#include "src/service/daemon.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/service/context_cache.h"
#include "src/service/runner.h"
#include "src/service/scheduler.h"
#include "src/service/work.h"
#include "src/util/backoff.h"
#include "src/util/file.h"

namespace anduril::service {

namespace fs = std::filesystem;

std::string ManifestPath(const std::string& state_dir) { return state_dir + "/queue.json"; }

std::string CaseCheckpointPath(const std::string& state_dir, const std::string& case_id) {
  return state_dir + "/ckpt-" + case_id + ".json";
}

std::string CaseMetricsPath(const std::string& state_dir, const std::string& case_id) {
  return state_dir + "/metrics-" + case_id + ".json";
}

std::string MergedMetricsPath(const std::string& state_dir) {
  return state_dir + "/merged_metrics.json";
}

namespace {

using SteadyClock = std::chrono::steady_clock;

struct WorkerSlot {
  int index = 0;
  pid_t pid = -1;
  std::string dir;
  int case_index = -1;  // -1 = idle
  fs::file_time_type dispatch_time{};
  bool awaiting_respawn = false;
  SteadyClock::time_point respawn_at{};
};

class Daemon {
 public:
  explicit Daemon(const ServeOptions& options) : options_(options) {}

  ServeReport Run() {
    if (!Init()) {
      return report_;
    }
    if (options_.workers <= 0) {
      RunInProcess();
    } else {
      RunSharded();
    }
    report_.manifest = manifest_;
    if (!report_.error && !report_.interrupted && manifest_.AllTerminal()) {
      MergeMetrics();
    }
    Summary();
    return report_;
  }

 private:
  bool Cancelled() const {
    return options_.cancel != nullptr &&
           options_.cancel->load(std::memory_order_relaxed);
  }

  void Log(const char* format, ...) {
    if (!options_.verbose) {
      return;
    }
    va_list args;
    va_start(args, format);
    std::vprintf(format, args);
    va_end(args);
    std::fflush(stdout);
  }

  void Fail(std::string message) {
    report_.error = true;
    report_.error_text = std::move(message);
    std::fprintf(stderr, "anduril_serve: %s\n", report_.error_text.c_str());
  }

  bool Init() {
    std::error_code ec;
    fs::create_directories(options_.state_dir, ec);
    const std::string manifest_path = ManifestPath(options_.state_dir);
    if (fs::exists(manifest_path)) {
      std::string error;
      if (!LoadManifestFile(manifest_path, &manifest_, &error)) {
        Fail(error);
        return false;
      }
      Log("resuming queue: %zu cases (%d reproduced, %d starved, %d failed so far)\n",
          manifest_.cases.size(), manifest_.CountState(CaseState::kReproduced),
          manifest_.CountState(CaseState::kStarved),
          manifest_.CountState(CaseState::kFailed));
    } else {
      if (options_.seed_cases.empty()) {
        Fail("no queue manifest at " + manifest_path + " and no cases to enqueue");
        return false;
      }
      manifest_.slice_rounds = options_.slice_rounds;
      manifest_.cases = options_.seed_cases;
      if (!SaveManifestFile(manifest_path, manifest_)) {
        Fail("cannot journal queue to " + manifest_path);
        return false;
      }
      Log("queued %zu cases (slice=%d rounds, %d workers)\n", manifest_.cases.size(),
          manifest_.slice_rounds, options_.workers);
    }
    return true;
  }

  void Journal() {
    if (!SaveManifestFile(ManifestPath(options_.state_dir), manifest_)) {
      Fail("cannot journal queue to " + ManifestPath(options_.state_dir));
    }
  }

  void StarveOut() {
    for (int index : ApplyStarveOut(&manifest_)) {
      const QueueCase& entry = manifest_.cases[index];
      Log("[%s] starved out at %d rounds (budget %d) — demoted, queue continues\n",
          entry.id.c_str(), entry.rounds_done, entry.round_budget);
    }
  }

  WorkUnit UnitFor(const QueueCase& entry) {
    WorkUnit unit;
    unit.case_id = entry.id;
    unit.chain = entry.chain;
    unit.slice_rounds = manifest_.slice_rounds;
    unit.round_budget = entry.round_budget;
    unit.checkpoint_path = CaseCheckpointPath(options_.state_dir, entry.id);
    unit.metrics_path = CaseMetricsPath(options_.state_dir, entry.id);
    unit.daemon_pid = getpid();
    ++dispatched_;
    if (dispatched_ == options_.worker_crash_slice) {
      unit.emulate_crash_after_rounds =
          options_.worker_crash_rounds > 0 ? options_.worker_crash_rounds : 1;
    }
    return unit;
  }

  // Returns false when the result belongs to a previous daemon incarnation.
  bool ApplyResult(int case_index, const WorkResult& result) {
    if (result.daemon_pid != getpid()) {
      return false;
    }
    QueueCase& entry = manifest_.cases[case_index];
    entry.rounds_done = std::max(entry.rounds_done, result.rounds_done);
    ++entry.slices_done;
    entry.crashes = 0;
    switch (result.status) {
      case SliceStatus::kReproduced:
        entry.state = CaseState::kReproduced;
        entry.script = result.script;
        entry.script_seed = result.script_seed;
        Log("[%s] reproduced in %d rounds (%d slices)\n", entry.id.c_str(),
            entry.rounds_done, entry.slices_done);
        break;
      case SliceStatus::kSliceDone:
        Log("[%s] %d/%d rounds\n", entry.id.c_str(), entry.rounds_done, entry.round_budget);
        break;
      case SliceStatus::kExhausted:
        entry.state = CaseState::kStarved;
        Log("[%s] candidate space exhausted at %d rounds — demoted\n", entry.id.c_str(),
            entry.rounds_done);
        break;
      case SliceStatus::kInterrupted:
        Log("[%s] slice drained at %d rounds\n", entry.id.c_str(), entry.rounds_done);
        break;
      case SliceStatus::kError:
        entry.state = CaseState::kFailed;
        Log("[%s] failed: %s\n", entry.id.c_str(), result.error.c_str());
        break;
    }
    StarveOut();
    Journal();
    ++report_.slices_applied;
    if (options_.crash_after_slices > 0 &&
        report_.slices_applied >= options_.crash_after_slices) {
      // Daemon-kill emulation: die the instant after a journal commit, with
      // workers possibly mid-slice — exactly a SIGKILL between transitions.
      _exit(kWorkerEmulatedCrashExit);
    }
    return true;
  }

  // ---- In-process (serial) mode -------------------------------------------

  void RunInProcess() {
    ContextCache cache;
    while (!report_.error && !manifest_.AllTerminal()) {
      if (Cancelled()) {
        report_.interrupted = true;
        Journal();
        return;
      }
      StarveOut();
      Journal();
      const int index = PickNextCase(manifest_, {});
      if (index < 0) {
        break;
      }
      WorkResult result = RunSlice(&cache, UnitFor(manifest_.cases[index]), options_.cancel);
      result.daemon_pid = getpid();
      ApplyResult(index, result);
      if (result.status == SliceStatus::kInterrupted) {
        report_.interrupted = true;
        return;
      }
    }
  }

  // ---- Sharded mode --------------------------------------------------------

  void RunSharded() {
    slots_.resize(options_.workers);
    backoffs_.reserve(options_.workers);
    for (int i = 0; i < options_.workers; ++i) {
      WorkerSlot& slot = slots_[i];
      slot.index = i;
      slot.dir = options_.state_dir + "/w" + std::to_string(i);
      std::error_code ec;
      fs::create_directories(slot.dir, ec);
      // Clear spool left by a previous incarnation: the manifest and the
      // checkpoints are the durable state, not in-flight commands/results.
      for (const fs::directory_entry& stale : fs::directory_iterator(slot.dir, ec)) {
        fs::remove_all(stale.path(), ec);
      }
      ExponentialBackoff::Options backoff_options;
      backoff_options.max_retries = 1 << 30;  // pacing only; cases gate crashes
      backoffs_.emplace_back(backoff_options, 0xB0FFu + static_cast<uint64_t>(i));
      Spawn(slot);
    }

    while (!report_.error && !manifest_.AllTerminal()) {
      if (Cancelled()) {
        Drain();
        return;
      }
      for (WorkerSlot& slot : slots_) {
        Reap(slot);
        Collect(slot);
        Heartbeat(slot);
        Respawn(slot);
        if (report_.error || manifest_.AllTerminal()) {
          break;
        }
        if (slot.pid > 0 && slot.case_index < 0) {
          Dispatch(slot);
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(options_.poll_ms));
    }
    Shutdown();
  }

  void Spawn(WorkerSlot& slot) {
    // The worker gets the daemon's pid on its command line: deriving it via
    // getppid() after exec races this daemon dying first (see worker.h).
    const std::string daemon_pid = std::to_string(getpid());
    const pid_t pid = fork();
    if (pid < 0) {
      Fail("fork failed for worker " + std::to_string(slot.index));
      return;
    }
    if (pid == 0) {
      execl(options_.serve_binary.c_str(), options_.serve_binary.c_str(), "worker",
            slot.dir.c_str(), daemon_pid.c_str(), static_cast<char*>(nullptr));
      std::fprintf(stderr, "worker %d: cannot exec %s\n", slot.index,
                   options_.serve_binary.c_str());
      _exit(127);
    }
    slot.pid = pid;
    slot.case_index = -1;
    slot.awaiting_respawn = false;
  }

  void Dispatch(WorkerSlot& slot) {
    StarveOut();
    std::vector<bool> busy(manifest_.cases.size(), false);
    for (const WorkerSlot& other : slots_) {
      if (other.case_index >= 0) {
        busy[other.case_index] = true;
      }
    }
    const int index = PickNextCase(manifest_, busy);
    if (index < 0) {
      return;
    }
    const WorkUnit unit = UnitFor(manifest_.cases[index]);
    if (!WriteFileAtomic(slot.dir + "/cmd.json", SerializeWorkUnit(unit))) {
      Fail("cannot write command for worker " + std::to_string(slot.index));
      return;
    }
    slot.case_index = index;
    slot.dispatch_time = fs::file_time_type::clock::now();
  }

  void Collect(WorkerSlot& slot) {
    if (slot.pid <= 0 || slot.case_index < 0) {
      return;
    }
    const std::string result_path =
        slot.dir + "/result-" + std::to_string(slot.pid) + ".json";
    if (!fs::exists(result_path)) {
      return;
    }
    std::string text;
    if (!ReadFileToString(result_path, &text)) {
      return;
    }
    std::error_code ec;
    fs::remove(result_path, ec);
    WorkResult result;
    std::string error;
    if (!ParseWorkResult(text, &result, &error)) {
      Fail("worker " + std::to_string(slot.index) + ": " + error);
      return;
    }
    const int case_index = slot.case_index;
    slot.case_index = -1;
    backoffs_[slot.index].Reset();
    ApplyResult(case_index, result);
  }

  // A worker that died mid-slice: requeue its case (with crash accounting)
  // and schedule a respawn under backoff.
  void HandleDeath(WorkerSlot& slot, int status) {
    const int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    // The worker may have finished the slice (result journaled) and died
    // after — a completed handoff, not a crash against the case.
    Collect(slot);
    if (slot.case_index >= 0) {
      QueueCase& entry = manifest_.cases[slot.case_index];
      ++entry.crashes;
      Log("[worker %d] died (%s %d) running %s — crash %d/%d, requeued\n", slot.index,
          WIFEXITED(status) ? "exit" : "signal",
          WIFEXITED(status) ? code : WTERMSIG(status), entry.id.c_str(), entry.crashes,
          options_.max_case_crashes);
      if (entry.crashes >= options_.max_case_crashes) {
        entry.state = CaseState::kFailed;
        Log("[%s] crashed its worker %d consecutive times — demoted to failed\n",
            entry.id.c_str(), entry.crashes);
      }
      Journal();
      slot.case_index = -1;
    }
    slot.pid = -1;
    slot.awaiting_respawn = true;
    const int64_t delay_ms = backoffs_[slot.index].NextDelayMs();
    slot.respawn_at = SteadyClock::now() + std::chrono::milliseconds(delay_ms);
    ++report_.worker_respawns;
    Log("[worker %d] respawning in %lldms\n", slot.index,
        static_cast<long long>(delay_ms));
  }

  void Reap(WorkerSlot& slot) {
    if (slot.pid <= 0) {
      return;
    }
    int status = 0;
    if (waitpid(slot.pid, &status, WNOHANG) == slot.pid) {
      HandleDeath(slot, status);
    }
  }

  // Heartbeat: a busy worker proves liveness by advancing its case's
  // checkpoint file. No progress within the timeout → SIGKILL + requeue.
  void Heartbeat(WorkerSlot& slot) {
    if (slot.pid <= 0 || slot.case_index < 0 || options_.heartbeat_timeout_ms <= 0) {
      return;
    }
    fs::file_time_type progress = slot.dispatch_time;
    std::error_code ec;
    const std::string checkpoint =
        CaseCheckpointPath(options_.state_dir, manifest_.cases[slot.case_index].id);
    const fs::file_time_type mtime = fs::last_write_time(checkpoint, ec);
    if (!ec && mtime > progress) {
      progress = mtime;
    }
    const auto stalled = std::chrono::duration_cast<std::chrono::milliseconds>(
        fs::file_time_type::clock::now() - progress);
    if (stalled.count() < options_.heartbeat_timeout_ms) {
      return;
    }
    Log("[worker %d] no heartbeat for %lldms on %s — killing\n", slot.index,
        static_cast<long long>(stalled.count()),
        manifest_.cases[slot.case_index].id.c_str());
    kill(slot.pid, SIGKILL);
    int status = 0;
    waitpid(slot.pid, &status, 0);
    HandleDeath(slot, status);
  }

  void Respawn(WorkerSlot& slot) {
    if (slot.pid > 0 || !slot.awaiting_respawn || report_.error) {
      return;
    }
    if (SteadyClock::now() >= slot.respawn_at) {
      Spawn(slot);
    }
  }

  // Graceful degradation: stop dispatching, let in-flight rounds finish
  // (workers drain at round boundaries and flush checkpoints), journal, and
  // leave the queue resumable.
  void Drain() {
    Log("draining: %zu cases pending, waiting for in-flight slices\n",
        static_cast<size_t>(manifest_.CountState(CaseState::kPending)));
    for (WorkerSlot& slot : slots_) {
      if (slot.pid > 0) {
        kill(slot.pid, SIGTERM);
      }
    }
    const auto deadline =
        SteadyClock::now() +
        std::chrono::milliseconds(std::max(options_.heartbeat_timeout_ms, 2000));
    while (SteadyClock::now() < deadline) {
      bool any_alive = false;
      for (WorkerSlot& slot : slots_) {
        if (slot.pid <= 0) {
          continue;
        }
        Collect(slot);
        int status = 0;
        if (waitpid(slot.pid, &status, WNOHANG) == slot.pid) {
          Collect(slot);  // result written between the poll and the exit
          slot.pid = -1;
          slot.case_index = -1;
        } else {
          any_alive = true;
        }
      }
      if (!any_alive) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(options_.poll_ms));
    }
    for (WorkerSlot& slot : slots_) {
      if (slot.pid > 0) {
        kill(slot.pid, SIGKILL);
        int status = 0;
        waitpid(slot.pid, &status, 0);
        slot.pid = -1;
      }
    }
    Journal();
    report_.interrupted = true;
  }

  void Shutdown() {
    for (WorkerSlot& slot : slots_) {
      if (slot.pid > 0) {
        kill(slot.pid, SIGTERM);
      }
    }
    for (WorkerSlot& slot : slots_) {
      if (slot.pid > 0) {
        int status = 0;
        waitpid(slot.pid, &status, 0);
        slot.pid = -1;
      }
    }
    Journal();
  }

  void MergeMetrics() {
    obs::MetricsRegistry merged;
    for (const QueueCase& entry : manifest_.cases) {
      std::string text;
      if (!ReadFileToString(CaseMetricsPath(options_.state_dir, entry.id), &text)) {
        continue;  // failed before its first slice completed
      }
      obs::MetricsSnapshot snapshot;
      std::string error;
      if (obs::ParseMetricsJson(text, &snapshot, &error)) {
        merged.Merge(snapshot);
      }
    }
    WriteFileAtomic(MergedMetricsPath(options_.state_dir), merged.DumpJson());
  }

  void Summary() {
    Log("queue %s: %d reproduced, %d starved, %d failed, %d pending (%d slices, %d "
        "respawns)\n",
        report_.interrupted ? "drained" : "done",
        manifest_.CountState(CaseState::kReproduced),
        manifest_.CountState(CaseState::kStarved), manifest_.CountState(CaseState::kFailed),
        manifest_.CountState(CaseState::kPending), report_.slices_applied,
        report_.worker_respawns);
  }

  ServeOptions options_;
  ServeReport report_;
  QueueManifest manifest_;
  std::vector<WorkerSlot> slots_;
  std::vector<ExponentialBackoff> backoffs_;
  int dispatched_ = 0;
};

}  // namespace

ServeReport RunService(const ServeOptions& options) {
  ServeOptions resolved = options;
  if (resolved.serve_binary.empty()) {
    char buffer[4096];
    const ssize_t length = readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
    if (length > 0) {
      buffer[length] = '\0';
      resolved.serve_binary = buffer;
    }
  }
  Daemon daemon(resolved);
  return daemon.Run();
}

}  // namespace anduril::service
