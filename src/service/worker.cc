#include "src/service/worker.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>

#include "src/service/context_cache.h"
#include "src/service/runner.h"
#include "src/service/work.h"
#include "src/util/file.h"

namespace anduril::service {

int RunWorkerLoop(const WorkerOptions& options) {
  const std::string cmd_path = options.work_dir + "/cmd.json";
  const std::string result_path =
      options.work_dir + "/result-" + std::to_string(getpid()) + ".json";
  const pid_t parent =
      options.parent_pid > 0 ? static_cast<pid_t>(options.parent_pid) : getppid();
  ContextCache cache;

  while (true) {
    if (getppid() != parent) {
      // Daemon died; a successor owns this spool now.
      return 0;
    }
    if (!std::filesystem::exists(cmd_path)) {
      if (options.cancel != nullptr && options.cancel->load(std::memory_order_relaxed)) {
        return 0;
      }
      if (!std::filesystem::exists(options.work_dir)) {
        return 0;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(options.poll_ms));
      continue;
    }

    std::string text;
    if (!ReadFileToString(cmd_path, &text)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(options.poll_ms));
      continue;
    }
    WorkUnit unit;
    std::string error;
    WorkResult result;
    const bool parsed = ParseWorkUnit(text, &unit, &error);
    if (parsed && unit.daemon_pid != static_cast<int64_t>(parent)) {
      // A successor daemon's command: this worker is an orphan that has not
      // noticed the reparenting yet. Leave the file for the rightful worker.
      return 0;
    }
    std::filesystem::remove(cmd_path);
    if (parsed) {
      result = RunSlice(&cache, unit, options.cancel);
      result.daemon_pid = unit.daemon_pid;
    } else {
      result.case_id = "?";
      result.status = SliceStatus::kError;
      result.error = error;
    }
    if (!WriteFileAtomic(result_path, SerializeWorkResult(result))) {
      std::fprintf(stderr, "worker %d: cannot write %s\n", getpid(), result_path.c_str());
      return 1;
    }
  }
}

}  // namespace anduril::service
