// Crash-safe work queue for the reproduction service: the queue manifest.
//
// The manifest is the daemon's durable scheduling state — one entry per
// queued failure case with its round budget, progress, and terminal outcome.
// It is journaled to "<state_dir>/queue.json" with an atomic write after
// every state transition, so a killed daemon restarts from the exact queue
// it last committed. The *search* state itself is not here: that lives in
// the per-case v3 checkpoint files, which the explorer already keeps
// byte-identically resumable. The manifest only has to be consistent with
// "some prefix of the work happened", and resuming from a slightly stale
// rounds_done is harmless — the checkpoint is the source of truth.
//
// Format:
//
//   {
//     "anduril_queue": 1,
//     "slice_rounds": N,            // rounds per dispatched work unit
//     "cases": [
//       {"id": "zk-2247", "chain": false, "round_budget": N,
//        "rounds_done": N, "slices_done": N, "crashes": N,
//        "state": "pending|reproduced|starved|failed",
//        "script": "<reproduction recipe text>",   // terminal states only
//        "script_seed": "<u64 as string>"},
//       ...
//     ],
//     "integrity": "<u64 FNV-1a as string>"
//   }
//
// `integrity` is an FNV-1a hash over every scheduling-relevant field, in
// order. Loading recomputes it; a hand-edited or bit-rotted manifest is
// rejected with an actionable error instead of silently resuming a
// different queue.

#ifndef ANDURIL_SRC_SERVICE_MANIFEST_H_
#define ANDURIL_SRC_SERVICE_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

namespace anduril::service {

inline constexpr int kQueueFormatVersion = 1;

enum class CaseState : uint8_t {
  kPending,     // has round budget left; schedulable
  kReproduced,  // terminal: script + seed recorded
  kStarved,     // terminal: budget exhausted (or candidate space dry)
  kFailed,      // terminal: crashed the worker too many consecutive times
};

const char* CaseStateName(CaseState state);
bool CaseStateFromName(const std::string& name, CaseState* out);
inline bool IsTerminal(CaseState state) { return state != CaseState::kPending; }

struct QueueCase {
  std::string id;
  bool chain = false;     // search with ChainExplorer (cascading cases)
  int round_budget = 0;   // starve-out threshold (total search rounds)
  int rounds_done = 0;
  int slices_done = 0;
  int crashes = 0;        // consecutive worker deaths while running this case
  CaseState state = CaseState::kPending;
  std::string script;     // reproduction recipe text (kReproduced only)
  uint64_t script_seed = 0;

  friend bool operator==(const QueueCase&, const QueueCase&) = default;
};

struct QueueManifest {
  int slice_rounds = 0;
  std::vector<QueueCase> cases;

  bool AllTerminal() const;
  int CountState(CaseState state) const;

  friend bool operator==(const QueueManifest&, const QueueManifest&) = default;
};

// FNV-1a over every field the scheduler depends on, in serialization order.
uint64_t ManifestIntegrityHash(const QueueManifest& manifest);

std::string SerializeManifest(const QueueManifest& manifest);
// Returns false (and fills *error) on malformed input, an unsupported
// version, an unknown state name, or an integrity-hash mismatch.
bool ParseManifest(const std::string& text, QueueManifest* out, std::string* error);

bool SaveManifestFile(const std::string& path, const QueueManifest& manifest);
bool LoadManifestFile(const std::string& path, QueueManifest* out, std::string* error);

}  // namespace anduril::service

#endif  // ANDURIL_SRC_SERVICE_MANIFEST_H_
