// Fair-share scheduling policy over the queue manifest — pure functions, so
// the policy is unit-testable without a daemon or workers.
//
// Policy:
//  - Starve-out, not wedging: a pending case whose rounds_done has reached
//    its round budget is demoted to kStarved (terminal) instead of being
//    dispatched again, so one stubborn case can never monopolize workers or
//    block queue completion. A case that crashes its worker
//    `max_case_crashes` times in a row is demoted to kFailed the same way.
//  - Fair share: among schedulable cases, dispatch the one with the fewest
//    rounds_done (ties break toward the lowest queue index). Every case
//    therefore advances at the same round rate regardless of queue position,
//    and a case that reproduces quickly frees its share for the rest.

#ifndef ANDURIL_SRC_SERVICE_SCHEDULER_H_
#define ANDURIL_SRC_SERVICE_SCHEDULER_H_

#include <vector>

#include "src/service/manifest.h"

namespace anduril::service {

// Demotes every pending case that is out of budget to kStarved. Returns the
// indices demoted (for progress reporting / journaling).
std::vector<int> ApplyStarveOut(QueueManifest* manifest);

// Picks the next case to dispatch: pending, not in `busy` (indices currently
// running on a worker), least rounds_done, tie → lowest index. Returns -1
// when nothing is schedulable. Does not mutate the manifest — run
// ApplyStarveOut first so out-of-budget cases are not considered.
int PickNextCase(const QueueManifest& manifest, const std::vector<bool>& busy);

}  // namespace anduril::service

#endif  // ANDURIL_SRC_SERVICE_SCHEDULER_H_
