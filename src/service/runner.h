// Executes one work unit: a bounded slice of one case's search.
//
// A slice is "resume the case's checkpoint (if any) and run at most
// slice_rounds more rounds, never past the round budget". Slicing a plain
// search needs no new explorer machinery: the explorer's
// byte-identical-resume invariant means running rounds [1..N] in one
// process is indistinguishable from running them as K slices across K
// process lifetimes — same ReproductionScript, same round count, same final
// metrics snapshot. Chain searches slice the same way through
// ExplorerOptions::max_total_rounds.
//
// Every slice attaches a fresh MetricsRegistry; resuming restores the
// checkpointed snapshot over it, and the slice's final registry state is
// journaled to the unit's metrics_path. The last slice of a case therefore
// leaves the case's complete, deterministic metrics on disk — including the
// successful round, which the checkpoint itself never contains (checkpoints
// are written after unsuccessful rounds only).

#ifndef ANDURIL_SRC_SERVICE_RUNNER_H_
#define ANDURIL_SRC_SERVICE_RUNNER_H_

#include <atomic>

#include "src/service/context_cache.h"
#include "src/service/work.h"

namespace anduril::service {

// Chain searches dispatched by the service explore chains of up to this
// many steps (matches the anduril_case default).
inline constexpr int kServiceMaxChainLength = 4;

// Runs the unit's slice in-process. `cancel` (optional) is the cooperative
// drain flag, checked at round boundaries. If the unit requests crash
// emulation this function does not return — it _exit()s mid-slice like a
// killed worker. The returned result carries no daemon_pid; the caller
// stamps it.
WorkResult RunSlice(ContextCache* cache, const WorkUnit& unit,
                    const std::atomic<bool>* cancel);

}  // namespace anduril::service

#endif  // ANDURIL_SRC_SERVICE_RUNNER_H_
