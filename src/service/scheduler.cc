#include "src/service/scheduler.h"

namespace anduril::service {

std::vector<int> ApplyStarveOut(QueueManifest* manifest) {
  std::vector<int> demoted;
  for (size_t i = 0; i < manifest->cases.size(); ++i) {
    QueueCase& entry = manifest->cases[i];
    if (entry.state == CaseState::kPending && entry.round_budget > 0 &&
        entry.rounds_done >= entry.round_budget) {
      entry.state = CaseState::kStarved;
      demoted.push_back(static_cast<int>(i));
    }
  }
  return demoted;
}

int PickNextCase(const QueueManifest& manifest, const std::vector<bool>& busy) {
  int best = -1;
  for (size_t i = 0; i < manifest.cases.size(); ++i) {
    const QueueCase& entry = manifest.cases[i];
    if (entry.state != CaseState::kPending) {
      continue;
    }
    if (i < busy.size() && busy[i]) {
      continue;
    }
    if (best == -1 || entry.rounds_done < manifest.cases[best].rounds_done) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

}  // namespace anduril::service
