#include "src/service/manifest.h"

#include <charconv>

#include "src/util/file.h"
#include "src/util/hash.h"
#include "src/util/json.h"

namespace anduril::service {
namespace {

// u64 fields ride as strings, like the checkpoint format: JSON numbers lose
// precision past 2^53.
JsonValue U64(uint64_t value) { return JsonValue::Str(std::to_string(value)); }

bool ParseU64(const JsonValue* value, uint64_t* out) {
  if (value == nullptr || value->type() != JsonValue::Type::kString) {
    return false;
  }
  const std::string& text = value->as_string();
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

}  // namespace

const char* CaseStateName(CaseState state) {
  switch (state) {
    case CaseState::kPending:
      return "pending";
    case CaseState::kReproduced:
      return "reproduced";
    case CaseState::kStarved:
      return "starved";
    case CaseState::kFailed:
      return "failed";
  }
  return "pending";
}

bool CaseStateFromName(const std::string& name, CaseState* out) {
  for (CaseState state : {CaseState::kPending, CaseState::kReproduced, CaseState::kStarved,
                          CaseState::kFailed}) {
    if (name == CaseStateName(state)) {
      *out = state;
      return true;
    }
  }
  return false;
}

bool QueueManifest::AllTerminal() const {
  for (const QueueCase& entry : cases) {
    if (!IsTerminal(entry.state)) {
      return false;
    }
  }
  return true;
}

int QueueManifest::CountState(CaseState state) const {
  int count = 0;
  for (const QueueCase& entry : cases) {
    if (entry.state == state) {
      ++count;
    }
  }
  return count;
}

uint64_t ManifestIntegrityHash(const QueueManifest& manifest) {
  Fnv1aHasher hasher;
  hasher.MixInt(kQueueFormatVersion);
  hasher.MixInt(manifest.slice_rounds);
  for (const QueueCase& entry : manifest.cases) {
    hasher.MixSeparator();
    hasher.MixStr(entry.id);
    hasher.MixInt(entry.chain ? 1 : 0);
    hasher.MixInt(entry.round_budget);
    hasher.MixInt(entry.rounds_done);
    hasher.MixInt(entry.slices_done);
    hasher.MixInt(entry.crashes);
    hasher.MixStr(CaseStateName(entry.state));
    hasher.MixStr(entry.script);
    hasher.MixInt(static_cast<int64_t>(entry.script_seed));
  }
  return hasher.hash();
}

std::string SerializeManifest(const QueueManifest& manifest) {
  JsonValue root = JsonValue::Object();
  root.Set("anduril_queue", JsonValue::Int(kQueueFormatVersion));
  root.Set("slice_rounds", JsonValue::Int(manifest.slice_rounds));
  JsonValue cases = JsonValue::Array();
  for (const QueueCase& entry : manifest.cases) {
    JsonValue item = JsonValue::Object();
    item.Set("id", JsonValue::Str(entry.id));
    item.Set("chain", JsonValue::Bool(entry.chain));
    item.Set("round_budget", JsonValue::Int(entry.round_budget));
    item.Set("rounds_done", JsonValue::Int(entry.rounds_done));
    item.Set("slices_done", JsonValue::Int(entry.slices_done));
    item.Set("crashes", JsonValue::Int(entry.crashes));
    item.Set("state", JsonValue::Str(CaseStateName(entry.state)));
    if (!entry.script.empty()) {
      item.Set("script", JsonValue::Str(entry.script));
      item.Set("script_seed", U64(entry.script_seed));
    }
    cases.Append(std::move(item));
  }
  root.Set("cases", std::move(cases));
  root.Set("integrity", U64(ManifestIntegrityHash(manifest)));
  return root.Dump();
}

bool ParseManifest(const std::string& text, QueueManifest* out, std::string* error) {
  std::string parse_error;
  JsonValue root = JsonValue::Parse(text, &parse_error);
  if (root.is_null()) {
    *error = "manifest: " + parse_error;
    return false;
  }
  const JsonValue* version = root.Find("anduril_queue");
  if (version == nullptr) {
    *error = "manifest: missing \"anduril_queue\" version field";
    return false;
  }
  if (version->as_int() != kQueueFormatVersion) {
    *error = "manifest: unsupported version " + std::to_string(version->as_int()) +
             " (this build reads version " + std::to_string(kQueueFormatVersion) + ")";
    return false;
  }
  QueueManifest manifest;
  manifest.slice_rounds = static_cast<int>(root.Find("slice_rounds") != nullptr
                                               ? root.Find("slice_rounds")->as_int()
                                               : 0);
  const JsonValue* cases = root.Find("cases");
  if (cases == nullptr || cases->type() != JsonValue::Type::kArray) {
    *error = "manifest: missing \"cases\" array";
    return false;
  }
  for (const JsonValue& item : cases->items()) {
    QueueCase entry;
    const JsonValue* id = item.Find("id");
    if (id == nullptr || id->type() != JsonValue::Type::kString) {
      *error = "manifest: case entry without \"id\"";
      return false;
    }
    entry.id = id->as_string();
    entry.chain = item.Find("chain") != nullptr && item.Find("chain")->as_bool();
    entry.round_budget =
        static_cast<int>(item.Find("round_budget") ? item.Find("round_budget")->as_int() : 0);
    entry.rounds_done =
        static_cast<int>(item.Find("rounds_done") ? item.Find("rounds_done")->as_int() : 0);
    entry.slices_done =
        static_cast<int>(item.Find("slices_done") ? item.Find("slices_done")->as_int() : 0);
    entry.crashes =
        static_cast<int>(item.Find("crashes") ? item.Find("crashes")->as_int() : 0);
    const JsonValue* state = item.Find("state");
    if (state == nullptr || !CaseStateFromName(state->as_string(), &entry.state)) {
      *error = "manifest: case " + entry.id + " has an unknown state";
      return false;
    }
    if (const JsonValue* script = item.Find("script"); script != nullptr) {
      entry.script = script->as_string();
      if (!ParseU64(item.Find("script_seed"), &entry.script_seed)) {
        *error = "manifest: case " + entry.id + " has a script but no valid script_seed";
        return false;
      }
    }
    manifest.cases.push_back(std::move(entry));
  }
  uint64_t stored = 0;
  if (!ParseU64(root.Find("integrity"), &stored)) {
    *error = "manifest: missing or malformed \"integrity\" hash";
    return false;
  }
  const uint64_t computed = ManifestIntegrityHash(manifest);
  if (stored != computed) {
    *error = "manifest: integrity hash mismatch (stored " + std::to_string(stored) +
             ", computed " + std::to_string(computed) +
             ") — the queue file was edited or corrupted";
    return false;
  }
  *out = std::move(manifest);
  return true;
}

bool SaveManifestFile(const std::string& path, const QueueManifest& manifest) {
  return WriteFileAtomic(path, SerializeManifest(manifest));
}

bool LoadManifestFile(const std::string& path, QueueManifest* out, std::string* error) {
  std::string text;
  if (!ReadFileToString(path, &text)) {
    *error = "cannot read " + path;
    return false;
  }
  return ParseManifest(text, out, error);
}

}  // namespace anduril::service
