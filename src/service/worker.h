// Worker-process main loop (the `anduril_serve worker` subcommand).
//
// A worker owns one spool directory under the daemon's state dir. It polls
// for "cmd.json", runs the slice in-process (keeping a ContextCache across
// slices so repeated dispatches of the same program skip the static
// analysis), and reports through "result-<pid>.json". It exits on its own
// in exactly four situations: the drain flag flipped (SIGTERM) and no work
// is pending, its parent changed (the daemon died — orphans must not race a
// successor daemon for the spool), the spool directory disappeared, or the
// spool holds a command addressed to a different daemon incarnation.
//
// The daemon passes its own pid down explicitly (parent_pid): deriving it
// with getppid() at startup races the daemon dying during fork/exec — a
// worker that starts already reparented would record the reaper as its
// parent and never notice the orphaning. The same pid gates command
// consumption: a command whose daemon_pid is not this worker's parent was
// written by a successor daemon for its own workers, so the orphan exits
// and leaves the file untouched instead of stealing the unit (which would
// wedge the successor — its own worker would never see a command, while
// the stolen slice keeps the case checkpoint's heartbeat fresh).

#ifndef ANDURIL_SRC_SERVICE_WORKER_H_
#define ANDURIL_SRC_SERVICE_WORKER_H_

#include <atomic>
#include <string>

namespace anduril::service {

struct WorkerOptions {
  std::string work_dir;
  int poll_ms = 2;
  // Pid of the owning daemon (0 falls back to getppid() at startup, for
  // hand-launched workers only — the daemon always passes it).
  int64_t parent_pid = 0;
  // Cooperative drain flag, usually wired to the process's SIGTERM handler.
  const std::atomic<bool>* cancel = nullptr;
};

// Runs until drained or orphaned; returns the process exit code.
int RunWorkerLoop(const WorkerOptions& options);

}  // namespace anduril::service

#endif  // ANDURIL_SRC_SERVICE_WORKER_H_
