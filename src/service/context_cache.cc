#include "src/service/context_cache.h"

#include <utility>

#include "src/explorer/checkpoint.h"
#include "src/systems/harness.h"

namespace anduril::service {

ContextCache::Entry* ContextCache::Get(const systems::FailureCase& failure_case) {
  auto known = by_id_.find(failure_case.id);
  if (known != by_id_.end()) {
    return known->second.get();
  }
  // verify=false: the registry's own tests prove the seeded ground truth;
  // re-proving it on every worker start would double the slice setup cost.
  auto entry = std::make_unique<Entry>();
  entry->built = systems::BuildCase(failure_case, /*verify=*/false);
  // Fix up the self-referential spec after the move (same wiring as
  // systems::BuildCase).
  entry->built.spec.program = entry->built.program.get();
  entry->built.spec.cluster = &entry->built.cluster;
  entry->fingerprint = explorer::ProgramFingerprint(*entry->built.program);
  entry->options = systems::OptionsForCase(failure_case);
  Entry* raw = entry.get();
  by_id_[failure_case.id] = std::move(entry);
  return raw;
}

}  // namespace anduril::service
