#include "src/service/runner.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>

#include "src/explorer/checkpoint.h"
#include "src/explorer/explorer.h"
#include "src/explorer/iterative.h"
#include "src/explorer/strategy.h"
#include "src/obs/metrics.h"
#include "src/util/file.h"

namespace anduril::service {
namespace {

std::string ChainToText(const ir::Program& program, const explorer::FaultChain& chain) {
  std::string text;
  for (size_t i = 0; i < chain.steps.size(); ++i) {
    const explorer::FaultChainStep& step = chain.steps[i];
    const char* what = step.candidate.kind == interp::FaultKind::kException
                           ? program.exception_type(step.candidate.type).name.c_str()
                           : interp::FaultKindName(step.candidate.kind);
    char line[256];
    std::snprintf(line, sizeof(line), "step %zu: %s, %s at occurrence %lld (seed %llu)\n",
                  i + 1, program.fault_site(step.candidate.site).name.c_str(), what,
                  static_cast<long long>(step.candidate.occurrence),
                  static_cast<unsigned long long>(step.seed));
    text += line;
  }
  return text;
}

WorkResult Error(const std::string& case_id, std::string message) {
  WorkResult result;
  result.case_id = case_id;
  result.status = SliceStatus::kError;
  result.error = std::move(message);
  return result;
}

}  // namespace

WorkResult RunSlice(ContextCache* cache, const WorkUnit& unit,
                    const std::atomic<bool>* cancel) {
  const systems::FailureCase* failure_case = systems::FindCase(unit.case_id);
  if (failure_case == nullptr) {
    return Error(unit.case_id, "unknown case '" + unit.case_id + "'");
  }
  ContextCache::Entry* entry = cache->Get(*failure_case);

  obs::MetricsRegistry metrics;
  explorer::ExplorerOptions options = entry->options;
  options.metrics = &metrics;
  options.cancel = cancel;

  // The checkpoint, not the manifest, says where the search is: a manifest
  // one commit behind (daemon killed between apply and journal) self-heals
  // here.
  explorer::SearchCheckpoint resumed;
  bool resume = false;
  if (!unit.checkpoint_path.empty() && std::filesystem::exists(unit.checkpoint_path)) {
    std::string error;
    if (!explorer::LoadCheckpointFile(unit.checkpoint_path, &resumed, &error)) {
      return Error(unit.case_id, "cannot resume checkpoint: " + error);
    }
    resume = true;
  }
  const int done = !resume ? 0
                   : unit.chain
                       ? resumed.chain.rounds_before_phase + resumed.rounds_completed
                       : resumed.rounds_completed;
  int cap = unit.round_budget > 0 ? std::min(unit.round_budget, done + unit.slice_rounds)
                                  : done + unit.slice_rounds;
  // Crash emulation: run a truncated slice, leave the checkpoint exactly as
  // a mid-slice SIGKILL would, and die without reporting.
  const bool emulate_crash = unit.emulate_crash_after_rounds > 0;
  if (emulate_crash) {
    cap = std::min(cap, done + unit.emulate_crash_after_rounds);
  }
  if (cap <= done) {
    return Error(unit.case_id, "slice has no round budget (done=" + std::to_string(done) +
                                   ", cap=" + std::to_string(cap) + ")");
  }

  explorer::CheckpointConfig checkpoint;
  checkpoint.path = unit.checkpoint_path;
  checkpoint.resume = resume ? &resumed : nullptr;

  WorkResult result;
  result.case_id = unit.case_id;
  if (unit.chain) {
    options.max_rounds = std::max(options.max_rounds, cap);
    options.max_total_rounds = cap;
    explorer::ChainExplorer explorer(entry->built.spec, options);
    explorer::ChainResult chain = explorer.Explore(kServiceMaxChainLength, checkpoint);
    result.rounds_done = chain.total_rounds;
    if (chain.reproduced) {
      result.status = SliceStatus::kReproduced;
      result.script = ChainToText(*entry->built.program, chain.chain);
      result.script_seed = chain.chain.steps.back().seed;
    } else if (chain.interrupted) {
      result.status = SliceStatus::kInterrupted;
    } else {
      result.status =
          chain.total_rounds >= cap ? SliceStatus::kSliceDone : SliceStatus::kExhausted;
    }
  } else {
    options.max_rounds = cap;
    // First plain slice over this program builds and caches the context;
    // later slices (and other cases sharing the program) reuse it.
    std::unique_ptr<explorer::Explorer> explorer;
    if (entry->context == nullptr) {
      explorer = std::make_unique<explorer::Explorer>(entry->built.spec, options);
      entry->context = explorer->shared_context();
    } else {
      explorer =
          std::make_unique<explorer::Explorer>(entry->built.spec, options, entry->context);
    }
    std::unique_ptr<explorer::InjectionStrategy> strategy =
        explorer::MakeFullFeedbackStrategy();
    explorer::ExploreResult search = explorer->Explore(strategy.get(), checkpoint);
    result.rounds_done = search.rounds;
    result.status = search.reproduced      ? SliceStatus::kReproduced
                    : search.interrupted   ? SliceStatus::kInterrupted
                    : search.rounds >= cap ? SliceStatus::kSliceDone
                                           : SliceStatus::kExhausted;
    if (search.reproduced) {
      result.script = search.script->ToText(*entry->built.program);
      result.script_seed = search.script->seed;
    }
  }

  if (emulate_crash) {
    // The checkpoint of the last unsuccessful round is on disk; dying here
    // without a result file is indistinguishable from SIGKILL to the daemon.
    _exit(kWorkerEmulatedCrashExit);
  }

  if (!unit.metrics_path.empty() &&
      !WriteFileAtomic(unit.metrics_path, metrics.DumpJson())) {
    return Error(unit.case_id, "cannot write metrics to " + unit.metrics_path);
  }
  return result;
}

}  // namespace anduril::service
