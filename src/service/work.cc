#include "src/service/work.h"

#include <charconv>

#include "src/util/json.h"

namespace anduril::service {
namespace {

JsonValue U64(uint64_t value) { return JsonValue::Str(std::to_string(value)); }

bool ParseU64(const JsonValue* value, uint64_t* out) {
  if (value == nullptr || value->type() != JsonValue::Type::kString) {
    return false;
  }
  const std::string& text = value->as_string();
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

std::string RequireString(const JsonValue& root, const char* key) {
  const JsonValue* value = root.Find(key);
  return value != nullptr && value->type() == JsonValue::Type::kString ? value->as_string()
                                                                       : std::string();
}

int64_t IntOr(const JsonValue& root, const char* key, int64_t fallback) {
  const JsonValue* value = root.Find(key);
  return value != nullptr ? value->as_int(fallback) : fallback;
}

}  // namespace

const char* SliceStatusName(SliceStatus status) {
  switch (status) {
    case SliceStatus::kReproduced:
      return "reproduced";
    case SliceStatus::kSliceDone:
      return "slice_done";
    case SliceStatus::kExhausted:
      return "exhausted";
    case SliceStatus::kInterrupted:
      return "interrupted";
    case SliceStatus::kError:
      return "error";
  }
  return "error";
}

bool SliceStatusFromName(const std::string& name, SliceStatus* out) {
  for (SliceStatus status :
       {SliceStatus::kReproduced, SliceStatus::kSliceDone, SliceStatus::kExhausted,
        SliceStatus::kInterrupted, SliceStatus::kError}) {
    if (name == SliceStatusName(status)) {
      *out = status;
      return true;
    }
  }
  return false;
}

std::string SerializeWorkUnit(const WorkUnit& unit) {
  JsonValue root = JsonValue::Object();
  root.Set("case_id", JsonValue::Str(unit.case_id));
  root.Set("chain", JsonValue::Bool(unit.chain));
  root.Set("slice_rounds", JsonValue::Int(unit.slice_rounds));
  root.Set("round_budget", JsonValue::Int(unit.round_budget));
  root.Set("checkpoint_path", JsonValue::Str(unit.checkpoint_path));
  root.Set("metrics_path", JsonValue::Str(unit.metrics_path));
  root.Set("daemon_pid", JsonValue::Int(unit.daemon_pid));
  root.Set("emulate_crash_after_rounds", JsonValue::Int(unit.emulate_crash_after_rounds));
  return root.Dump();
}

bool ParseWorkUnit(const std::string& text, WorkUnit* out, std::string* error) {
  std::string parse_error;
  JsonValue root = JsonValue::Parse(text, &parse_error);
  if (root.is_null()) {
    *error = "work unit: " + parse_error;
    return false;
  }
  WorkUnit unit;
  unit.case_id = RequireString(root, "case_id");
  if (unit.case_id.empty()) {
    *error = "work unit: missing case_id";
    return false;
  }
  unit.chain = root.Find("chain") != nullptr && root.Find("chain")->as_bool();
  unit.slice_rounds = static_cast<int>(IntOr(root, "slice_rounds", 0));
  unit.round_budget = static_cast<int>(IntOr(root, "round_budget", 0));
  unit.checkpoint_path = RequireString(root, "checkpoint_path");
  unit.metrics_path = RequireString(root, "metrics_path");
  unit.daemon_pid = IntOr(root, "daemon_pid", 0);
  unit.emulate_crash_after_rounds =
      static_cast<int>(IntOr(root, "emulate_crash_after_rounds", 0));
  *out = std::move(unit);
  return true;
}

std::string SerializeWorkResult(const WorkResult& result) {
  JsonValue root = JsonValue::Object();
  root.Set("case_id", JsonValue::Str(result.case_id));
  root.Set("status", JsonValue::Str(SliceStatusName(result.status)));
  root.Set("rounds_done", JsonValue::Int(result.rounds_done));
  if (!result.script.empty()) {
    root.Set("script", JsonValue::Str(result.script));
    root.Set("script_seed", U64(result.script_seed));
  }
  root.Set("daemon_pid", JsonValue::Int(result.daemon_pid));
  if (!result.error.empty()) {
    root.Set("error", JsonValue::Str(result.error));
  }
  return root.Dump();
}

bool ParseWorkResult(const std::string& text, WorkResult* out, std::string* error) {
  std::string parse_error;
  JsonValue root = JsonValue::Parse(text, &parse_error);
  if (root.is_null()) {
    *error = "work result: " + parse_error;
    return false;
  }
  WorkResult result;
  result.case_id = RequireString(root, "case_id");
  if (result.case_id.empty()) {
    *error = "work result: missing case_id";
    return false;
  }
  const JsonValue* status = root.Find("status");
  if (status == nullptr || !SliceStatusFromName(status->as_string(), &result.status)) {
    *error = "work result: missing or unknown status";
    return false;
  }
  result.rounds_done = static_cast<int>(IntOr(root, "rounds_done", 0));
  if (const JsonValue* script = root.Find("script"); script != nullptr) {
    result.script = script->as_string();
    if (!ParseU64(root.Find("script_seed"), &result.script_seed)) {
      *error = "work result: script without a valid script_seed";
      return false;
    }
  }
  result.daemon_pid = IntOr(root, "daemon_pid", 0);
  result.error = RequireString(root, "error");
  *out = std::move(result);
  return true;
}

}  // namespace anduril::service
