// Per-case analysis cache for the reproduction service.
//
// A case's static analysis (causal graph, distance matrix, timeline — the
// ExplorerContext) is immutable once built, and building it dominates the
// cost of a short slice. Workers and the in-process daemon therefore keep
// one cache per process: the first slice of a case builds the program and
// its context; every later slice of the same case reuses both. Entries are
// keyed by case id — NOT by the program fingerprint, which hashes only the
// program's *shape* (fault sites, exception types) and collides across
// sibling cases of the same system that differ in workload, failure log,
// and oracle. The fingerprint is still computed per entry: dispatch uses it
// to cross-check the case's checkpoint.
//
// BuiltCase is self-referential (spec.program / spec.cluster point into the
// struct), so entries live behind unique_ptr and the spec is re-pointed
// once after the move — callers get stable pointers for the life of the
// cache.
//
// Metrics note: reusing a cached context records "explore.context_cache_hits"
// (via Explorer's shared-context constructor) and skips the
// "explore.context_builds" the first build recorded — but a slice resumed
// from a checkpoint *overwrites* its registry with the checkpointed
// snapshot, so a case's final metrics are byte-identical however its slices
// were spread across processes.

#ifndef ANDURIL_SRC_SERVICE_CONTEXT_CACHE_H_
#define ANDURIL_SRC_SERVICE_CONTEXT_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "src/explorer/context.h"
#include "src/explorer/experiment.h"
#include "src/systems/common.h"

namespace anduril::service {

class ContextCache {
 public:
  struct Entry {
    systems::BuiltCase built;
    uint64_t fingerprint = 0;
    // Canonical candidate-space options for the case (no metrics attached).
    explorer::ExplorerOptions options;
    // Built lazily by the first plain search over the entry; chain searches
    // rebuild per phase and leave it untouched.
    std::shared_ptr<const explorer::ExplorerContext> context;
  };

  // Returns the cached entry for the case, building (verify=false) on first
  // use. The pointer stays valid for the cache's lifetime.
  Entry* Get(const systems::FailureCase& failure_case);

  size_t size() const { return by_id_.size(); }

 private:
  std::map<std::string, std::unique_ptr<Entry>> by_id_;
};

}  // namespace anduril::service

#endif  // ANDURIL_SRC_SERVICE_CONTEXT_CACHE_H_
