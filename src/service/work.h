// Work-unit handoff between the daemon and its worker processes.
//
// IPC is deliberately file-based and crash-shaped like everything else in
// the service: the daemon atomically writes "<worker_dir>/cmd.json"; the
// worker consumes it, runs one slice of one case, and atomically writes
// "<worker_dir>/result-<pid>.json". Either side dying at any point leaves
// only whole files behind, and a stale result from a previous daemon
// incarnation is recognized (and discarded) by its daemon_pid.
//
// A work unit does not carry absolute round positions. The worker derives
// "where the search is" from the case's checkpoint file — the durable,
// byte-identically-resumable search state — so a manifest that is one
// commit behind (daemon killed between applying a result and journaling it)
// self-heals on the next dispatch.

#ifndef ANDURIL_SRC_SERVICE_WORK_H_
#define ANDURIL_SRC_SERVICE_WORK_H_

#include <cstdint>
#include <string>

namespace anduril::service {

struct WorkUnit {
  std::string case_id;
  bool chain = false;
  int slice_rounds = 0;   // run at most this many *new* rounds
  int round_budget = 0;   // absolute cap on total rounds (starve-out line)
  std::string checkpoint_path;
  std::string metrics_path;
  // Owning daemon's pid; echoed back in WorkResult so results written by
  // orphaned workers of a dead daemon are never applied to the live queue.
  int64_t daemon_pid = 0;
  // Test-only crash emulation: checkpoint this many rounds into the slice,
  // then _exit(kWorkerEmulatedCrashExit) without reporting — exactly what a
  // SIGKILL between two rounds looks like to the daemon.
  int emulate_crash_after_rounds = 0;

  friend bool operator==(const WorkUnit&, const WorkUnit&) = default;
};

enum class SliceStatus : uint8_t {
  kReproduced,   // oracle satisfied; script + seed attached
  kSliceDone,    // slice cap reached, budget remains — reschedule
  kExhausted,    // candidate space dry before the cap — starve out
  kInterrupted,  // cooperative drain (SIGTERM) stopped it mid-slice
  kError,        // setup failure (unknown case, unreadable checkpoint, ...)
};

const char* SliceStatusName(SliceStatus status);
bool SliceStatusFromName(const std::string& name, SliceStatus* out);

struct WorkResult {
  std::string case_id;
  SliceStatus status = SliceStatus::kError;
  int rounds_done = 0;  // case-total search rounds after this slice
  std::string script;   // reproduction recipe text (kReproduced only)
  uint64_t script_seed = 0;
  int64_t daemon_pid = 0;
  std::string error;

  friend bool operator==(const WorkResult&, const WorkResult&) = default;
};

// Worker exit code for an emulated mid-slice crash (test hook).
inline constexpr int kWorkerEmulatedCrashExit = 42;

std::string SerializeWorkUnit(const WorkUnit& unit);
bool ParseWorkUnit(const std::string& text, WorkUnit* out, std::string* error);

std::string SerializeWorkResult(const WorkResult& result);
bool ParseWorkResult(const std::string& text, WorkResult* out, std::string* error);

}  // namespace anduril::service

#endif  // ANDURIL_SRC_SERVICE_WORK_H_
