// Statement, expression, and condition model of the anduril IR.
//
// Statements form a tree per method: statement 0 is the root Block and
// structured statements (Block / If / While / TryCatch) reference child
// statements by StmtId. The tree shape is what makes the paper's causal
// rules exact here: the "dominators" of a location are simply its structural
// ancestors (enclosing conditions, enclosing catch handlers, and the method
// entry).

#ifndef ANDURIL_SRC_IR_STMT_H_
#define ANDURIL_SRC_IR_STMT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/ir/types.h"

namespace anduril::ir {

// ---------------------------------------------------------------------------
// Expressions (right-hand sides of assignments, log arguments, payloads).
// ---------------------------------------------------------------------------

enum class ExprKind : uint8_t {
  kConst,    // literal int64
  kVar,      // read a node variable
  kPayload,  // read the current task's message payload (frame-local)
  kAddVar,   // var + var
  kAdd,      // var + const
  kSub,      // var - const
};

struct Expr {
  ExprKind kind = ExprKind::kConst;
  VarId var = kInvalidId;        // kVar / kAdd / kSub / kAddVar (lhs)
  VarId var2 = kInvalidId;       // kAddVar (rhs)
  int64_t constant = 0;          // kConst / kAdd / kSub

  static Expr Const(int64_t v) { return Expr{ExprKind::kConst, kInvalidId, kInvalidId, v}; }
  static Expr Var(VarId v) { return Expr{ExprKind::kVar, v, kInvalidId, 0}; }
  static Expr Payload() { return Expr{ExprKind::kPayload, kInvalidId, kInvalidId, 0}; }
  static Expr Add(VarId v, int64_t c) { return Expr{ExprKind::kAdd, v, kInvalidId, c}; }
  static Expr Sub(VarId v, int64_t c) { return Expr{ExprKind::kSub, v, kInvalidId, c}; }
  static Expr AddVar(VarId a, VarId b) { return Expr{ExprKind::kAddVar, a, b, 0}; }

  // Variables read by this expression (for slicing).
  void CollectReads(std::vector<VarId>* out) const {
    if (var != kInvalidId) {
      out->push_back(var);
    }
    if (var2 != kInvalidId) {
      out->push_back(var2);
    }
  }
};

// ---------------------------------------------------------------------------
// Conditions (If / While / Await guards).
// ---------------------------------------------------------------------------

enum class CmpOp : uint8_t { kTrue, kEq, kNe, kLt, kLe, kGt, kGe };

// A single comparison `lhs OP rhs` where rhs is a constant or a variable.
// Compound boolean conditions are expressed with nested Ifs, matching how a
// bytecode-level analysis sees them (one branch per comparison).
struct Cond {
  CmpOp op = CmpOp::kTrue;
  VarId lhs = kInvalidId;
  bool rhs_is_var = false;
  VarId rhs_var = kInvalidId;
  int64_t rhs_const = 0;

  static Cond True() { return Cond{}; }
  static Cond Eq(VarId v, int64_t c) { return Cond{CmpOp::kEq, v, false, kInvalidId, c}; }
  static Cond Ne(VarId v, int64_t c) { return Cond{CmpOp::kNe, v, false, kInvalidId, c}; }
  static Cond Lt(VarId v, int64_t c) { return Cond{CmpOp::kLt, v, false, kInvalidId, c}; }
  static Cond Le(VarId v, int64_t c) { return Cond{CmpOp::kLe, v, false, kInvalidId, c}; }
  static Cond Gt(VarId v, int64_t c) { return Cond{CmpOp::kGt, v, false, kInvalidId, c}; }
  static Cond Ge(VarId v, int64_t c) { return Cond{CmpOp::kGe, v, false, kInvalidId, c}; }
  static Cond EqVar(VarId a, VarId b) { return Cond{CmpOp::kEq, a, true, b, 0}; }
  static Cond NeVar(VarId a, VarId b) { return Cond{CmpOp::kNe, a, true, b, 0}; }
  static Cond GtVar(VarId a, VarId b) { return Cond{CmpOp::kGt, a, true, b, 0}; }
  static Cond GeVar(VarId a, VarId b) { return Cond{CmpOp::kGe, a, true, b, 0}; }
  static Cond LtVar(VarId a, VarId b) { return Cond{CmpOp::kLt, a, true, b, 0}; }

  bool IsTrue() const { return op == CmpOp::kTrue; }

  // Variables read by this condition (for slicing / wakeup registration).
  void CollectReads(std::vector<VarId>* out) const {
    if (lhs != kInvalidId) {
      out->push_back(lhs);
    }
    if (rhs_is_var && rhs_var != kInvalidId) {
      out->push_back(rhs_var);
    }
  }

  bool Evaluate(int64_t lhs_value, int64_t rhs_value) const;
};

// ---------------------------------------------------------------------------
// Statements.
// ---------------------------------------------------------------------------

enum class StmtKind : uint8_t {
  kBlock,         // execute children in order
  kNop,           // plain location (models uninteresting straight-line code)
  kAssign,        // var = expr
  kLog,           // emit a log template with argument expressions
  kIf,            // cond ? then_block : else_block
  kWhile,         // while (cond) body — with an iteration safety cap
  kInvoke,        // synchronous same-thread call of another method
  kTryCatch,      // try block + ordered catch clauses
  kThrow,         // throw new <exception type>   ("new-exception" fault site)
  kExternalCall,  // library/system call that may throw ("external" fault site)
  kAwait,         // block until cond holds (signalled) or timeout -> throw
  kSignal,        // set a condition variable to 1 and wake its waiters
  kSend,          // asynchronous message to a handler method on another node
  kSubmit,        // submit a method to an executor thread; stores a future
  kFutureGet,     // wait for a future; failures surface as ExecutionException
  kSleep,         // advance simulated time
  kReturn,        // return from the current method
  kBreak,         // break out of the nearest enclosing While
};

// One catch clause of a TryCatch.
struct CatchClause {
  ExceptionTypeId type = kInvalidId;  // catches this type and its subtypes
  StmtId block = kInvalidId;          // handler block
};

struct Stmt {
  StmtKind kind = StmtKind::kNop;
  StmtId parent = kInvalidId;  // filled in by Program::Finalize

  // kBlock
  std::vector<StmtId> children;

  // kIf / kWhile / kAwait
  Cond cond;
  StmtId then_block = kInvalidId;  // kIf then / kWhile body
  StmtId else_block = kInvalidId;  // kIf else (optional)

  // kAssign
  VarId assign_var = kInvalidId;
  Expr expr;  // also: kSend / kSubmit payload

  // kLog
  LogTemplateId log_template = kInvalidId;
  std::vector<Expr> log_args;
  // If set, the rendered message gets a " [exc=Type at site]" suffix showing
  // the exception being handled — the analog of log.warn("...", e) printing a
  // stack trace. Only meaningful inside a catch block.
  bool log_attach_exception = false;

  // kInvoke / kSend / kSubmit: callee. For kSend this is the handler method.
  MethodId callee = kInvalidId;

  // kTryCatch
  StmtId try_block = kInvalidId;
  std::vector<CatchClause> catches;

  // kThrow / kAwait timeout exception / kExternalCall primary exception
  ExceptionTypeId exception_type = kInvalidId;

  // kExternalCall
  std::string site_name;                           // e.g. "hdfs.dn.write_block"
  std::vector<ExceptionTypeId> throwable_types;    // injectable exception types
  int32_t transient_every_n = 0;                   // natural transient failure period (0=never)

  // kAwait
  int64_t timeout_ms = -1;  // -1 = wait forever

  // kSend
  std::string target_node;          // target node name (or name prefix)
  VarId target_index_var = kInvalidId;  // optional: append env[var] to target_node
  std::string handler_thread;       // thread on the target node; "" = method name
  int64_t latency_ms = 1;           // base network latency

  // kSubmit
  VarId future_var = kInvalidId;    // also read by kFutureGet
  std::string executor_thread;      // executor thread name on the same node

  // kSleep
  int64_t sleep_ms = 0;

  // Optional human-readable label for dumps and debugging.
  std::string label;
};

const char* StmtKindName(StmtKind kind);
const char* CmpOpName(CmpOp op);

}  // namespace anduril::ir

#endif  // ANDURIL_SRC_IR_STMT_H_
