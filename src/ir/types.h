// Fundamental identifier types for the anduril program IR.
//
// The IR plays the role that JVM bytecode (viewed through Soot) plays in the
// paper: the five simulated target systems are *written* in this IR, the
// static analyses (call graph, exception flow, slicing, causal graph) walk
// it, and the deterministic interpreter executes it with fault-injection
// hooks at every fault site.

#ifndef ANDURIL_SRC_IR_TYPES_H_
#define ANDURIL_SRC_IR_TYPES_H_

#include <cstddef>
#include <cstdint>

namespace anduril::ir {

// Index of a method within a Program.
using MethodId = int32_t;
// Index of a statement within its Method.
using StmtId = int32_t;
// Index of an interned variable name within a Program. Variables are named
// globally but *stored* per simulation node, so the same VarId on two nodes
// denotes two independent cells.
using VarId = int32_t;
// Index of an exception type within a Program's exception registry.
using ExceptionTypeId = int32_t;
// Index of a log message template within a Program.
using LogTemplateId = int32_t;
// Index of a static fault site (an ExternalCall, Throw, or Await-with-timeout
// statement) within a Program's fault-site registry.
using FaultSiteId = int32_t;

inline constexpr int32_t kInvalidId = -1;

// A statement identified globally across the whole program.
struct GlobalStmt {
  MethodId method = kInvalidId;
  StmtId stmt = kInvalidId;

  friend bool operator==(const GlobalStmt&, const GlobalStmt&) = default;
  friend auto operator<=>(const GlobalStmt&, const GlobalStmt&) = default;
};

struct GlobalStmtHash {
  size_t operator()(const GlobalStmt& g) const {
    return static_cast<size_t>(g.method) * 1000003u + static_cast<size_t>(g.stmt);
  }
};

}  // namespace anduril::ir

#endif  // ANDURIL_SRC_IR_TYPES_H_
