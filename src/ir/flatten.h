// Flattened, pre-decoded program representation for the interpreter's
// direct-threaded dispatch loop.
//
// The statement tree is the IR of record — the causal analysis, the
// verifier, and the fault-site registry all work on it — but walking it
// costs a cursor stack, a parent chase, and a re-switch on `stmt.kind` at
// every step. FlatProgram lowers every finalized method once into a single
// contiguous op array with everything the hot loop needs pre-resolved:
//
//   - control flow as absolute op indices (branch targets, loop back-edges,
//     break jumps, try/catch merge points) instead of block/child cursors;
//   - fault-site IDs looked up at compile time (one hash probe per site
//     here instead of one per execution);
//   - log templates pre-split on their "{}" placeholders;
//   - Send handler threads and Submit executor threads interned into a
//     dense thread-name table so the simulator can cache (node, name) ->
//     thread lookups in a flat array;
//   - exception handling as a static handler chain per op: each op knows
//     the innermost enclosing try's handler record, each handler knows its
//     parent, and each catch body writes its caught exception into a fixed
//     per-frame slot.
//
// Step-count parity: the lowering emits exactly one op per interpreter
// *step* of the tree walker — including its bookkeeping steps (block
// entry/exit, while re-checks, frame pops) — so `sim.steps`, step limits,
// and every downstream golden are identical between the two execution
// modes. The mapping is documented per-construct in flatten.cc.
//
// A FlatProgram is immutable after construction and holds no run state, so
// one instance is shared read-only across all runs, rounds, and worker
// threads of an exploration (built once per ExplorerContext).

#ifndef ANDURIL_SRC_IR_FLATTEN_H_
#define ANDURIL_SRC_IR_FLATTEN_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/ir/program.h"
#include "src/ir/stmt.h"
#include "src/ir/types.h"

namespace anduril::ir {

// Opcodes of the flattened form. Structured statements lower to sequences:
// a Block becomes kNop (entry) + body + kNop (exit), an If becomes kBranch
// plus per-arm exit jumps, a While becomes kLoopEnter ... kLoopBack, a
// TryCatch becomes kNop (entry) + bodies + kJump-to-merge exits, and Break
// becomes kJump. Every method's stream ends with kReturn.
enum class OpCode : uint8_t {
  kNop = 0,      // 1-step filler (block entry/exit, try entry, Nop stmt)
  kJump,         // pc = target (break, arm/catch exits)
  kAssign,       // env[var] = expr
  kLog,          // render logs_[aux]
  kBranch,       // pc = cond ? target : target2
  kLoopEnter,    // cond ? (loop_iters[slot] = 1, fall through) : pc = target
  kLoopBack,     // cond ? (cap-check, ++loop_iters[slot], pc = target) : fall through
  kInvoke,       // push frame at flat_method(callee).entry; pc stays here
  kThrow,        // raise exception_type originating at this op
  kRethrow,      // re-raise caughts[caught_slot]
  kExternalCall, // fault hook; may throw / crash / stall
  kAwait,        // cond ? fall through : block (timeout -> exception_type)
  kSignal,       // wake waiters of var
  kSend,         // message via sends_[aux]; payload = expr
  kSubmit,       // new future in var; task (callee, expr) on thread_name
  kFutureGet,    // future in var; may block / raise ExecutionException
  kSleep,        // block for sleep_ms
  kReturn,       // pop frame; advance caller or finish task
};

inline constexpr size_t kOpCodeCount = 18;

const char* OpCodeName(OpCode code);

// One catch clause of a flattened handler: exceptions that are `type` (or a
// subtype) resume at op index `target` (the first op of the catch body).
struct FlatCatchClause {
  ExceptionTypeId type = kInvalidId;
  int32_t target = -1;
};

// Static exception-handler record for the ops inside one try body. `parent`
// is the record of the enclosing try (-1 at method top level); the raise
// walk follows parent links instead of popping cursors. `caught_slot` is
// the fixed per-frame slot the caught exception is stored in — slots are
// numbered by static catch-body nesting depth, so the clauses of one try
// share a slot and only the active one ever reads it.
struct FlatHandler {
  int32_t parent = -1;
  int32_t caught_slot = -1;
  std::vector<FlatCatchClause> clauses;
};

// A log statement pre-split on its "{}" placeholders: the rendered message
// is segments[0] + arg0 + segments[1] + arg1 + ... (missing args render as
// 0, matching the tree walker).
struct FlatLog {
  LogTemplateId tmpl = kInvalidId;
  LogLevel level = LogLevel::kInfo;
  std::string logger;
  std::vector<std::string> segments;  // always placeholders + 1 entries
  std::vector<Expr> args;
  bool attach_exception = false;
  size_t text_size = 0;  // sum of segment sizes, for reserve()
};

// A Send statement with its handler thread pre-resolved to an interned
// thread-name id (including the default "last method-name segment" rule).
struct FlatSend {
  std::string target_node;              // full name, or prefix when dynamic
  VarId target_index_var = kInvalidId;  // append env[var] when valid
  MethodId callee = kInvalidId;
  int32_t handler_name = -1;  // index into thread_names()
  int64_t latency_ms = 1;
};

// Per-method metadata: where the method's ops start and how many loop /
// caught slots a frame of it needs (static maxima over its nesting).
struct FlatMethod {
  MethodId id = kInvalidId;
  int32_t entry = -1;
  int32_t loop_slots = 0;
  int32_t caught_slots = 0;
};

// One decoded op. Deliberately a fat struct rather than a packed encoding:
// the dispatch loop reads two or three fields per op and never chases a
// pointer, and the array is built once per context.
struct FlatOp {
  OpCode code = OpCode::kNop;
  int32_t target = -1;       // kJump / kBranch(true) / kLoopEnter(false) / kLoopBack(true)
  int32_t target2 = -1;      // kBranch(false)
  int32_t handler = -1;      // innermost enclosing FlatHandler (-1 = none)
  int32_t caught_slot = -1;  // innermost enclosing catch body's slot (-1 = none)
  int32_t loop_slot = -1;    // kLoopEnter / kLoopBack
  int32_t aux = -1;          // kLog -> logs(), kSend -> sends()
  int32_t thread_name = -1;  // kSubmit executor, index into thread_names()
  GlobalStmt source;         // originating statement (blocked_at, origins)
  FaultSiteId site = kInvalidId;  // pre-resolved FaultSiteAt(source)
  Cond cond;                 // kBranch / kLoopEnter / kLoopBack / kAwait
  Expr expr;                 // kAssign rhs; kSend / kSubmit payload
  VarId var = kInvalidId;    // kAssign dest / kSignal var / kSubmit+kFutureGet future
  MethodId callee = kInvalidId;        // kInvoke / kSubmit
  ExceptionTypeId exception_type = kInvalidId;  // kThrow / timeout / transient type
  int32_t transient_every_n = 0;  // kExternalCall natural-transient period
  int64_t timeout_ms = -1;        // kAwait / kFutureGet
  int64_t sleep_ms = 0;           // kSleep
};

class FlatProgram {
 public:
  // `program` must be finalized and must outlive the FlatProgram.
  explicit FlatProgram(const Program& program);

  FlatProgram(const FlatProgram&) = delete;
  FlatProgram& operator=(const FlatProgram&) = delete;

  const Program* program() const { return program_; }

  const std::vector<FlatOp>& ops() const { return ops_; }
  const FlatMethod& flat_method(MethodId id) const {
    return methods_[static_cast<size_t>(id)];
  }
  const FlatHandler& handler(int32_t id) const {
    return handlers_[static_cast<size_t>(id)];
  }
  const FlatLog& log(int32_t id) const { return logs_[static_cast<size_t>(id)]; }
  const FlatSend& send(int32_t id) const { return sends_[static_cast<size_t>(id)]; }
  size_t send_count() const { return sends_.size(); }

  // Interned Send-handler and Submit-executor thread names.
  const std::string& thread_name(int32_t id) const {
    return thread_names_[static_cast<size_t>(id)];
  }
  size_t thread_name_count() const { return thread_names_.size(); }

 private:
  friend struct MethodLowering;

  int32_t InternThreadName(const std::string& name);

  const Program* program_;
  std::vector<FlatOp> ops_;
  std::vector<FlatMethod> methods_;
  std::vector<FlatHandler> handlers_;
  std::vector<FlatLog> logs_;
  std::vector<FlatSend> sends_;
  std::vector<std::string> thread_names_;
  std::unordered_map<std::string, int32_t> thread_name_index_;
};

}  // namespace anduril::ir

#endif  // ANDURIL_SRC_IR_FLATTEN_H_
