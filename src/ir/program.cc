#include "src/ir/program.h"

#include "src/util/check.h"
#include "src/util/strings.h"

namespace anduril::ir {

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  ANDURIL_UNREACHABLE();
}

Program::Program() {
  // The root exception type always exists with id 0.
  ExceptionType root;
  root.id = 0;
  root.name = "Exception";
  root.parent = kInvalidId;
  exception_types_.push_back(root);
  exception_index_["Exception"] = 0;
}

ExceptionTypeId Program::DefineException(const std::string& name,
                                         const std::string& parent_name) {
  auto it = exception_index_.find(name);
  if (it != exception_index_.end()) {
    return it->second;
  }
  ExceptionTypeId parent = 0;
  if (!parent_name.empty()) {
    parent = FindException(parent_name);
    ANDURIL_CHECK_NE(parent, kInvalidId) << "unknown parent exception " << parent_name;
  }
  ExceptionType type;
  type.id = static_cast<ExceptionTypeId>(exception_types_.size());
  type.name = name;
  type.parent = parent;
  exception_types_.push_back(type);
  exception_index_[name] = type.id;
  return type.id;
}

ExceptionTypeId Program::FindException(const std::string& name) const {
  auto it = exception_index_.find(name);
  return it == exception_index_.end() ? kInvalidId : it->second;
}

bool Program::ExceptionIsA(ExceptionTypeId type, ExceptionTypeId ancestor) const {
  ExceptionTypeId cur = type;
  while (cur != kInvalidId) {
    if (cur == ancestor) {
      return true;
    }
    cur = exception_types_[static_cast<size_t>(cur)].parent;
  }
  return false;
}

VarId Program::InternVar(const std::string& name) {
  auto it = var_index_.find(name);
  if (it != var_index_.end()) {
    return it->second;
  }
  VarId id = static_cast<VarId>(var_names_.size());
  var_names_.push_back(name);
  var_index_[name] = id;
  return id;
}

LogTemplateId Program::DefineLogTemplate(LogLevel level, const std::string& logger,
                                         const std::string& text) {
  std::string key = StrFormat("%d|%s|%s", static_cast<int>(level), logger.c_str(), text.c_str());
  auto it = log_template_index_.find(key);
  if (it != log_template_index_.end()) {
    return it->second;
  }
  LogTemplate tmpl;
  tmpl.id = static_cast<LogTemplateId>(log_templates_.size());
  tmpl.level = level;
  tmpl.logger = logger;
  tmpl.text = text;
  log_templates_.push_back(tmpl);
  log_template_index_[key] = tmpl.id;
  return tmpl.id;
}

MethodId Program::DefineMethod(const std::string& name) {
  ANDURIL_CHECK(!finalized()) << "cannot add methods after Finalize";
  ANDURIL_CHECK(method_index_.find(name) == method_index_.end())
      << "duplicate method " << name;
  Method method;
  method.id = static_cast<MethodId>(methods_.size());
  method.name = name;
  // Statement 0 is the root block.
  Stmt root;
  root.kind = StmtKind::kBlock;
  method.stmts.push_back(root);
  methods_.push_back(std::move(method));
  method_index_[name] = methods_.back().id;
  return methods_.back().id;
}

MethodId Program::FindMethod(const std::string& name) const {
  auto it = method_index_.find(name);
  return it == method_index_.end() ? kInvalidId : it->second;
}

void Program::Finalize() {
  ANDURIL_CHECK(!finalized_) << "Finalize called twice";
  for (Method& method : methods_) {
    ANDURIL_CHECK(!method.stmts.empty());
    FillParents(&method, 0);
    VerifyMethod(method);
  }
  EnumerateFaultSites();
  finalized_ = true;
}

void Program::FillParents(Method* method, StmtId id) {
  Stmt& stmt = method->stmt(id);
  auto visit_child = [&](StmtId child) {
    if (child == kInvalidId) {
      return;
    }
    method->stmt(child).parent = id;
    FillParents(method, child);
  };
  for (StmtId child : stmt.children) {
    visit_child(child);
  }
  visit_child(stmt.then_block);
  visit_child(stmt.else_block);
  visit_child(stmt.try_block);
  for (const CatchClause& clause : stmt.catches) {
    visit_child(clause.block);
  }
}

void Program::VerifyMethod(const Method& method) const {
  ANDURIL_CHECK_EQ(method.stmt(0).kind, StmtKind::kBlock)
      << "method " << method.name << ": stmt 0 must be the root block";
  VerifyStmt(method, 0, /*inside_loop=*/false, /*inside_catch=*/false);
}

void Program::VerifyStmt(const Method& method, StmtId id, bool inside_loop,
                         bool inside_catch) const {
  const Stmt& stmt = method.stmt(id);
  auto check_block = [&](StmtId block, bool loop) {
    ANDURIL_CHECK_NE(block, kInvalidId) << "missing block in " << method.name;
    ANDURIL_CHECK_EQ(method.stmt(block).kind, StmtKind::kBlock);
    VerifyStmt(method, block, loop, inside_catch);
  };
  switch (stmt.kind) {
    case StmtKind::kBlock:
      for (StmtId child : stmt.children) {
        VerifyStmt(method, child, inside_loop, inside_catch);
      }
      break;
    case StmtKind::kIf:
      check_block(stmt.then_block, inside_loop);
      if (stmt.else_block != kInvalidId) {
        check_block(stmt.else_block, inside_loop);
      }
      break;
    case StmtKind::kWhile:
      check_block(stmt.then_block, /*loop=*/true);
      break;
    case StmtKind::kTryCatch:
      check_block(stmt.try_block, inside_loop);
      ANDURIL_CHECK(!stmt.catches.empty()) << "try without catch in " << method.name;
      for (const CatchClause& clause : stmt.catches) {
        ANDURIL_CHECK_GE(clause.type, 0);
        ANDURIL_CHECK_LT(static_cast<size_t>(clause.type), exception_types_.size());
        ANDURIL_CHECK_NE(clause.block, kInvalidId);
        ANDURIL_CHECK_EQ(method.stmt(clause.block).kind, StmtKind::kBlock);
        VerifyStmt(method, clause.block, inside_loop, /*inside_catch=*/true);
      }
      break;
    case StmtKind::kInvoke:
    case StmtKind::kSend:
    case StmtKind::kSubmit:
      ANDURIL_CHECK_GE(stmt.callee, 0) << "unresolved callee in " << method.name;
      ANDURIL_CHECK_LT(static_cast<size_t>(stmt.callee), methods_.size());
      if (stmt.kind == StmtKind::kSubmit) {
        ANDURIL_CHECK_NE(stmt.future_var, kInvalidId);
        ANDURIL_CHECK(!stmt.executor_thread.empty());
      }
      if (stmt.kind == StmtKind::kSend) {
        ANDURIL_CHECK(!stmt.target_node.empty());
      }
      break;
    case StmtKind::kThrow:
      // exception_type == kInvalidId marks a rethrow, legal only in a catch.
      if (stmt.exception_type == kInvalidId) {
        ANDURIL_CHECK(inside_catch) << "rethrow outside catch in " << method.name;
      }
      break;
    case StmtKind::kExternalCall:
      ANDURIL_CHECK(!stmt.site_name.empty());
      ANDURIL_CHECK(!stmt.throwable_types.empty())
          << "external call " << stmt.site_name << " declares no throwable types";
      break;
    case StmtKind::kAssign:
      ANDURIL_CHECK_NE(stmt.assign_var, kInvalidId);
      break;
    case StmtKind::kLog:
      ANDURIL_CHECK_GE(stmt.log_template, 0);
      ANDURIL_CHECK_LT(static_cast<size_t>(stmt.log_template), log_templates_.size());
      if (stmt.log_attach_exception) {
        ANDURIL_CHECK(inside_catch) << "LogExc outside catch in " << method.name;
      }
      break;
    case StmtKind::kSignal:
      ANDURIL_CHECK_NE(stmt.assign_var, kInvalidId);
      break;
    case StmtKind::kFutureGet:
      ANDURIL_CHECK_NE(stmt.future_var, kInvalidId);
      break;
    case StmtKind::kBreak:
      ANDURIL_CHECK(inside_loop) << "break outside loop in " << method.name;
      break;
    case StmtKind::kNop:
    case StmtKind::kAwait:
    case StmtKind::kSleep:
    case StmtKind::kReturn:
      break;
  }
}

void Program::EnumerateFaultSites() {
  for (const Method& method : methods_) {
    for (StmtId s = 0; s < static_cast<StmtId>(method.stmts.size()); ++s) {
      const Stmt& stmt = method.stmt(s);
      FaultSite site;
      site.location = GlobalStmt{method.id, s};
      switch (stmt.kind) {
        case StmtKind::kExternalCall:
          site.kind = FaultSiteKind::kExternal;
          site.name = StrFormat("%s@%s#%d", stmt.site_name.c_str(), method.name.c_str(), s);
          break;
        case StmtKind::kThrow:
          if (stmt.exception_type == kInvalidId) {
            continue;  // rethrow: a propagation point, not an origin
          }
          site.kind = FaultSiteKind::kThrowNew;
          site.name = StrFormat("throw:%s@%s#%d",
                                exception_type(stmt.exception_type).name.c_str(),
                                method.name.c_str(), s);
          break;
        case StmtKind::kAwait:
          if (stmt.exception_type == kInvalidId) {
            continue;
          }
          site.kind = FaultSiteKind::kAwaitTimeout;
          site.name = StrFormat("await:%s@%s#%d",
                                exception_type(stmt.exception_type).name.c_str(),
                                method.name.c_str(), s);
          break;
        case StmtKind::kSend:
          site.kind = FaultSiteKind::kSend;
          site.name = StrFormat("send:%s->%s@%s#%d", this->method(stmt.callee).name.c_str(),
                                stmt.target_node.c_str(), method.name.c_str(), s);
          break;
        default:
          continue;
      }
      site.id = static_cast<FaultSiteId>(fault_sites_.size());
      fault_site_index_[site.location] = site.id;
      fault_sites_.push_back(std::move(site));
    }
  }
}

FaultSiteId Program::FaultSiteAt(GlobalStmt location) const {
  auto it = fault_site_index_.find(location);
  return it == fault_site_index_.end() ? kInvalidId : it->second;
}

size_t Program::CountFaultSites(FaultSiteKind kind) const {
  size_t count = 0;
  for (const FaultSite& site : fault_sites_) {
    if (site.kind == kind) {
      ++count;
    }
  }
  return count;
}

size_t Program::TotalStmtCount() const {
  size_t count = 0;
  for (const Method& method : methods_) {
    count += method.stmts.size();
  }
  return count;
}

void Program::DumpStmt(const Method& method, StmtId id, int indent, std::string* out) const {
  const Stmt& stmt = method.stmt(id);
  auto line = [&](const std::string& text) {
    out->append(static_cast<size_t>(indent) * 2, ' ');
    out->append(StrFormat("[%d] ", id));
    out->append(text);
    out->push_back('\n');
  };
  auto cond_text = [&](const Cond& cond) -> std::string {
    if (cond.IsTrue()) {
      return "true";
    }
    std::string rhs = cond.rhs_is_var ? var_name(cond.rhs_var) : std::to_string(cond.rhs_const);
    return StrFormat("%s %s %s", var_name(cond.lhs).c_str(), CmpOpName(cond.op), rhs.c_str());
  };
  switch (stmt.kind) {
    case StmtKind::kBlock:
      line("{");
      for (StmtId child : stmt.children) {
        DumpStmt(method, child, indent + 1, out);
      }
      line("}");
      break;
    case StmtKind::kIf:
      line(StrFormat("if (%s)", cond_text(stmt.cond).c_str()));
      DumpStmt(method, stmt.then_block, indent + 1, out);
      if (stmt.else_block != kInvalidId) {
        line("else");
        DumpStmt(method, stmt.else_block, indent + 1, out);
      }
      break;
    case StmtKind::kWhile:
      line(StrFormat("while (%s)", cond_text(stmt.cond).c_str()));
      DumpStmt(method, stmt.then_block, indent + 1, out);
      break;
    case StmtKind::kTryCatch:
      line("try");
      DumpStmt(method, stmt.try_block, indent + 1, out);
      for (const CatchClause& clause : stmt.catches) {
        line(StrFormat("catch (%s)", exception_type(clause.type).name.c_str()));
        DumpStmt(method, clause.block, indent + 1, out);
      }
      break;
    case StmtKind::kAssign:
      line(StrFormat("%s = <expr>", var_name(stmt.assign_var).c_str()));
      break;
    case StmtKind::kLog:
      line(StrFormat("log %s \"%s\"", LogLevelName(log_template(stmt.log_template).level),
                     log_template(stmt.log_template).text.c_str()));
      break;
    case StmtKind::kInvoke:
      line(StrFormat("invoke %s", method_index_.size() ? methods_[static_cast<size_t>(
                                                             stmt.callee)].name.c_str()
                                                       : "?"));
      break;
    case StmtKind::kThrow:
      line(StrFormat("throw new %s", exception_type(stmt.exception_type).name.c_str()));
      break;
    case StmtKind::kExternalCall:
      line(StrFormat("external %s", stmt.site_name.c_str()));
      break;
    case StmtKind::kAwait:
      line(StrFormat("await (%s) timeout=%lld", cond_text(stmt.cond).c_str(),
                     static_cast<long long>(stmt.timeout_ms)));
      break;
    case StmtKind::kSignal:
      line(StrFormat("signal %s", var_name(stmt.assign_var).c_str()));
      break;
    case StmtKind::kSend:
      line(StrFormat("send %s -> %s", methods_[static_cast<size_t>(stmt.callee)].name.c_str(),
                     stmt.target_node.c_str()));
      break;
    case StmtKind::kSubmit:
      line(StrFormat("submit %s on %s",
                     methods_[static_cast<size_t>(stmt.callee)].name.c_str(),
                     stmt.executor_thread.c_str()));
      break;
    case StmtKind::kFutureGet:
      line(StrFormat("future_get %s", var_name(stmt.future_var).c_str()));
      break;
    case StmtKind::kSleep:
      line(StrFormat("sleep %lld", static_cast<long long>(stmt.sleep_ms)));
      break;
    case StmtKind::kReturn:
      line("return");
      break;
    case StmtKind::kBreak:
      line("break");
      break;
    case StmtKind::kNop:
      line(stmt.label.empty() ? "nop" : StrFormat("nop (%s)", stmt.label.c_str()));
      break;
  }
}

std::string Program::DumpMethod(MethodId id) const {
  const Method& method = methods_[static_cast<size_t>(id)];
  std::string out = StrFormat("method %s:\n", method.name.c_str());
  DumpStmt(method, 0, 1, &out);
  return out;
}

std::string Program::Dump() const {
  std::string out;
  for (const Method& method : methods_) {
    out += DumpMethod(method.id);
  }
  return out;
}

}  // namespace anduril::ir
