// Fluent construction API for IR methods.
//
// Systems are written like this:
//
//   MethodBuilder b(&program, "wal.consume");
//   b.If(b.Gt("writerLen", 0), [&] {
//        b.Invoke("wal.sync");
//      },
//      [&] {
//        b.If(b.Eq("unackedAppends", 0), [&] {
//          b.Assign("readyForRolling", Expr::Const(1));
//          b.Signal("readyForRolling");
//        });
//      });
//   b.Build();
//
// A builder keeps a stack of open blocks; structured statements take lambdas
// that populate their child blocks. Callee methods may be referenced before
// they are built (forward references) — the builder declares them on demand.

#ifndef ANDURIL_SRC_IR_BUILDER_H_
#define ANDURIL_SRC_IR_BUILDER_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/ir/program.h"

namespace anduril::ir {

// Options for MethodBuilder::Send.
struct SendOpts {
  std::string index_var;       // "" = static target; else target = node + env[var]
  Expr payload = Expr::Const(0);
  std::string handler_thread;  // "" = handler method name
  int64_t latency_ms = 1;
};

class MethodBuilder {
 public:
  // Creates (or opens the forward-declared) method `name` in `program`.
  MethodBuilder(Program* program, const std::string& name);
  ~MethodBuilder();

  MethodBuilder(const MethodBuilder&) = delete;
  MethodBuilder& operator=(const MethodBuilder&) = delete;

  using BlockFn = std::function<void()>;

  // --- Condition / expression helpers (by variable name) -------------------
  VarId Var(const std::string& name) { return program_->InternVar(name); }
  Cond Eq(const std::string& var, int64_t c) { return Cond::Eq(Var(var), c); }
  Cond Ne(const std::string& var, int64_t c) { return Cond::Ne(Var(var), c); }
  Cond Lt(const std::string& var, int64_t c) { return Cond::Lt(Var(var), c); }
  Cond Le(const std::string& var, int64_t c) { return Cond::Le(Var(var), c); }
  Cond Gt(const std::string& var, int64_t c) { return Cond::Gt(Var(var), c); }
  Cond Ge(const std::string& var, int64_t c) { return Cond::Ge(Var(var), c); }
  Cond EqVar(const std::string& a, const std::string& b) { return Cond::EqVar(Var(a), Var(b)); }
  Cond NeVar(const std::string& a, const std::string& b) { return Cond::NeVar(Var(a), Var(b)); }
  Cond GtVar(const std::string& a, const std::string& b) { return Cond::GtVar(Var(a), Var(b)); }
  Cond GeVar(const std::string& a, const std::string& b) { return Cond::GeVar(Var(a), Var(b)); }
  Cond LtVar(const std::string& a, const std::string& b) { return Cond::LtVar(Var(a), Var(b)); }
  Expr V(const std::string& var) { return Expr::Var(Var(var)); }
  Expr Plus(const std::string& var, int64_t c) { return Expr::Add(Var(var), c); }
  Expr Minus(const std::string& var, int64_t c) { return Expr::Sub(Var(var), c); }

  // --- Statements -----------------------------------------------------------
  MethodBuilder& Nop(const std::string& label = "");
  MethodBuilder& Assign(const std::string& var, Expr value);
  MethodBuilder& Log(LogLevel level, const std::string& logger, const std::string& text,
                     std::vector<Expr> args = {});
  // Log that also prints the in-flight exception (stack-trace analog). Only
  // valid inside a catch block.
  MethodBuilder& LogExc(LogLevel level, const std::string& logger, const std::string& text,
                        std::vector<Expr> args = {});
  // Throws the exception currently being handled (Java `throw e;` in a
  // catch). Only valid inside a catch block.
  MethodBuilder& Rethrow();
  MethodBuilder& If(Cond cond, const BlockFn& then_fn, const BlockFn& else_fn = nullptr);
  MethodBuilder& While(Cond cond, const BlockFn& body_fn);
  MethodBuilder& Invoke(const std::string& method);
  MethodBuilder& TryCatch(const BlockFn& try_fn,
                          std::vector<std::pair<std::string, BlockFn>> catches);
  MethodBuilder& Throw(const std::string& exception_type);
  // External (library) call: an injectable fault site.
  MethodBuilder& External(const std::string& site_name,
                          std::vector<std::string> throwable_types,
                          int32_t transient_every_n = 0);
  // Await until `cond` holds (woken by Signal on its variables). With a
  // timeout and exception type, elapsing throws that type.
  MethodBuilder& Await(Cond cond, int64_t timeout_ms = -1,
                       const std::string& timeout_exception = "");
  MethodBuilder& Signal(const std::string& var);

  MethodBuilder& Send(const std::string& handler_method, const std::string& target_node,
                      SendOpts opts = SendOpts());
  MethodBuilder& Submit(const std::string& method, const std::string& future_var,
                        const std::string& executor_thread, Expr payload = Expr::Const(0));
  MethodBuilder& FutureGet(const std::string& future_var, int64_t timeout_ms = -1,
                           const std::string& timeout_exception = "");
  MethodBuilder& Sleep(int64_t ms);
  MethodBuilder& Return();
  MethodBuilder& Break();

  // Finishes the method. Called automatically by the destructor, but calling
  // it explicitly gives a clear point for CHECK failures.
  void Build();

  Program* program() { return program_; }
  MethodId method_id() const { return method_id_; }

 private:
  Stmt& NewStmt(StmtKind kind, StmtId* id_out);
  StmtId NewBlock();
  void PushBlock(StmtId block);
  void PopBlock();
  void FillBlock(StmtId block, const BlockFn& fn);
  MethodId DeclareCallee(const std::string& name);

  Program* program_;
  MethodId method_id_;
  std::vector<StmtId> block_stack_;
  bool built_ = false;
};

}  // namespace anduril::ir

#endif  // ANDURIL_SRC_IR_BUILDER_H_
