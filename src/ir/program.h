// Program container of the anduril IR: methods, exception type hierarchy,
// log message templates, interned variables, and the static fault-site
// registry (the paper's "fault sites" — program points that can throw).

#ifndef ANDURIL_SRC_IR_PROGRAM_H_
#define ANDURIL_SRC_IR_PROGRAM_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/ir/stmt.h"
#include "src/ir/types.h"

namespace anduril::ir {

// Log severity levels, mirroring Log4j.
enum class LogLevel : uint8_t { kDebug, kInfo, kWarn, kError };

const char* LogLevelName(LogLevel level);

// A parameterized log message, e.g. "Failed to sync WAL after {} retries".
// Placeholders "{}" are substituted with rendered argument values. The
// sanitizer used in log diffing replaces digit runs with '#', which makes a
// rendered message match its template's sanitized text again — exactly the
// property the paper's per-thread diff relies on.
struct LogTemplate {
  LogTemplateId id = kInvalidId;
  LogLevel level = LogLevel::kInfo;
  std::string logger;  // component name, e.g. "wal.AsyncFSWAL"
  std::string text;    // with "{}" placeholders
};

// One exception type in a single-inheritance hierarchy rooted at "Exception".
struct ExceptionType {
  ExceptionTypeId id = kInvalidId;
  std::string name;
  ExceptionTypeId parent = kInvalidId;  // kInvalidId only for the root
};

// Kind of a static fault site, following §4.1 of the paper (kSend extends
// the taxonomy to the message layer).
enum class FaultSiteKind : uint8_t {
  kExternal,      // ExternalCall: library call that may throw (injectable)
  kThrowNew,      // Throw: `throw new E` in system code
  kAwaitTimeout,  // Await with a timeout exception
  kSend,          // Send: cross-node message (network-fault injectable)
};

// A static fault site. kExternal sites are exception/crash/stall injectable:
// the tool forces the external call to throw one of its declared exception
// types at a chosen occurrence (paper Figure 3), halt the node, or wedge the
// call. kSend sites are network-fault injectable (drop / delay / duplicate /
// partition at a chosen occurrence of the message). kThrowNew /
// kAwaitTimeout sites participate in the causal graph as new-exception
// sources and in Table 1 counts.
struct FaultSite {
  FaultSiteId id = kInvalidId;
  GlobalStmt location;
  FaultSiteKind kind = FaultSiteKind::kExternal;
  std::string name;  // unique, e.g. "hdfs.dn.write_block@DataStreamer.run#12"
};

struct Method {
  MethodId id = kInvalidId;
  std::string name;
  std::vector<Stmt> stmts;  // stmts[0] is the root block

  const Stmt& stmt(StmtId s) const { return stmts[static_cast<size_t>(s)]; }
  Stmt& stmt(StmtId s) { return stmts[static_cast<size_t>(s)]; }
};

class Program {
 public:
  Program();

  // --- Exception types -----------------------------------------------------
  // Registers (or returns the existing) exception type. `parent_name` must
  // already exist; "" means the root type "Exception".
  ExceptionTypeId DefineException(const std::string& name, const std::string& parent_name = "");
  ExceptionTypeId FindException(const std::string& name) const;  // kInvalidId if absent
  const ExceptionType& exception_type(ExceptionTypeId id) const {
    return exception_types_[static_cast<size_t>(id)];
  }
  size_t exception_type_count() const { return exception_types_.size(); }
  // True if `type` equals or derives from `ancestor`.
  bool ExceptionIsA(ExceptionTypeId type, ExceptionTypeId ancestor) const;
  ExceptionTypeId root_exception() const { return 0; }

  // --- Variables -----------------------------------------------------------
  VarId InternVar(const std::string& name);
  const std::string& var_name(VarId id) const { return var_names_[static_cast<size_t>(id)]; }
  size_t var_count() const { return var_names_.size(); }

  // --- Log templates ---------------------------------------------------------
  LogTemplateId DefineLogTemplate(LogLevel level, const std::string& logger,
                                  const std::string& text);
  const LogTemplate& log_template(LogTemplateId id) const {
    return log_templates_[static_cast<size_t>(id)];
  }
  size_t log_template_count() const { return log_templates_.size(); }

  // --- Methods ---------------------------------------------------------------
  MethodId DefineMethod(const std::string& name);
  MethodId FindMethod(const std::string& name) const;  // kInvalidId if absent
  const Method& method(MethodId id) const { return methods_[static_cast<size_t>(id)]; }
  Method& method(MethodId id) { return methods_[static_cast<size_t>(id)]; }
  size_t method_count() const { return methods_.size(); }

  // --- Finalization ------------------------------------------------------------
  // Fills parent links, verifies structural invariants, and enumerates fault
  // sites. Must be called once after all methods are built and before the
  // program is analyzed or executed.
  void Finalize();
  bool finalized() const { return finalized_; }

  // --- Fault sites (valid after Finalize) ------------------------------------
  const std::vector<FaultSite>& fault_sites() const { return fault_sites_; }
  const FaultSite& fault_site(FaultSiteId id) const {
    return fault_sites_[static_cast<size_t>(id)];
  }
  // Fault site at a statement, or kInvalidId.
  FaultSiteId FaultSiteAt(GlobalStmt location) const;
  size_t CountFaultSites(FaultSiteKind kind) const;

  // Total number of statements across all methods (the "LOC" analog of the
  // IR; reported in the Table 1 bench).
  size_t TotalStmtCount() const;

  // Human-readable dump of one method / the whole program.
  std::string DumpMethod(MethodId id) const;
  std::string Dump() const;

 private:
  void VerifyMethod(const Method& method) const;
  void VerifyStmt(const Method& method, StmtId id, bool inside_loop, bool inside_catch) const;
  void FillParents(Method* method, StmtId id);
  void EnumerateFaultSites();
  void DumpStmt(const Method& method, StmtId id, int indent, std::string* out) const;

  bool finalized_ = false;
  std::vector<ExceptionType> exception_types_;
  std::unordered_map<std::string, ExceptionTypeId> exception_index_;
  std::vector<std::string> var_names_;
  std::unordered_map<std::string, VarId> var_index_;
  std::vector<LogTemplate> log_templates_;
  std::unordered_map<std::string, LogTemplateId> log_template_index_;
  std::vector<Method> methods_;
  std::unordered_map<std::string, MethodId> method_index_;
  std::vector<FaultSite> fault_sites_;
  std::unordered_map<GlobalStmt, FaultSiteId, GlobalStmtHash> fault_site_index_;
};

}  // namespace anduril::ir

#endif  // ANDURIL_SRC_IR_PROGRAM_H_
