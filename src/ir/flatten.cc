#include "src/ir/flatten.h"

#include <utility>

#include "src/util/check.h"

namespace anduril::ir {

namespace {

// Short thread name for a handler method: "wal.consume" -> "consume". Must
// match the interpreter's default-handler rule exactly.
std::string DefaultHandlerThread(const std::string& method_name) {
  size_t pos = method_name.rfind('.');
  return pos == std::string::npos ? method_name : method_name.substr(pos + 1);
}

}  // namespace

const char* OpCodeName(OpCode code) {
  switch (code) {
    case OpCode::kNop: return "nop";
    case OpCode::kJump: return "jump";
    case OpCode::kAssign: return "assign";
    case OpCode::kLog: return "log";
    case OpCode::kBranch: return "branch";
    case OpCode::kLoopEnter: return "loop_enter";
    case OpCode::kLoopBack: return "loop_back";
    case OpCode::kInvoke: return "invoke";
    case OpCode::kThrow: return "throw";
    case OpCode::kRethrow: return "rethrow";
    case OpCode::kExternalCall: return "external_call";
    case OpCode::kAwait: return "await";
    case OpCode::kSignal: return "signal";
    case OpCode::kSend: return "send";
    case OpCode::kSubmit: return "submit";
    case OpCode::kFutureGet: return "future_get";
    case OpCode::kSleep: return "sleep";
    case OpCode::kReturn: return "return";
  }
  return "unknown";
}

// Lowers one method. Emission preserves the tree walker's step accounting —
// every op corresponds to exactly one Step() of the tree interpreter:
//
//   statement        tree steps                      flat ops
//   ---------        ----------                      --------
//   simple stmt      1 (dispatch)                    the stmt's op
//   Block            1 entry + body + 1 exit-pop     kNop + body + kNop
//   If, taken arm    1 + arm body + 1 arm-pop        kBranch + body + kJump/kNop
//   If, no arm       1                               kBranch straight to merge
//   While, N iters   1 + N re-checks + N bodies      kLoopEnter + N x (body
//                    (re-check N is the false one)     + kLoopBack)
//   Invoke           1 + callee + 1 root-pop         kInvoke + callee + kReturn
//   TryCatch         1 + try body + 1 try-pop        kNop + body + kJump(merge)
//   caught clause    0 entry + body + 1 catch-pop    (raise sets pc) + body
//                                                      + kJump(merge)
//   Break            1 (pops through the loop)       kJump past kLoopBack
//   Return           1                               kReturn
//
// The raise path costs zero steps in both modes (the tree walker rewrites a
// cursor in place; the flat walker rewrites pc), as do wakeups and task
// pulls.
struct MethodLowering {
  FlatProgram* out;
  const Program* program;
  const Method* method;

  int32_t current_handler = -1;  // innermost FlatHandler for ops being emitted
  int32_t current_caught = -1;   // innermost enclosing catch body's slot
  int32_t catch_depth = 0;       // next free caught slot
  int32_t loop_depth = 0;        // next free loop slot
  int32_t max_caught = 0;
  int32_t max_loops = 0;
  // Per enclosing loop: break-jump op indices awaiting the loop's merge.
  std::vector<std::vector<int32_t>> break_patches;

  int32_t Here() const { return static_cast<int32_t>(out->ops_.size()); }

  FlatOp& Emit(OpCode code, StmtId stmt) {
    FlatOp op;
    op.code = code;
    op.source = GlobalStmt{method->id, stmt};
    op.handler = current_handler;
    op.caught_slot = current_caught;
    op.site = program->FaultSiteAt(op.source);
    out->ops_.push_back(std::move(op));
    return out->ops_.back();
  }

  void LowerChildren(StmtId block_id) {
    const Stmt& block = method->stmt(block_id);
    ANDURIL_CHECK_EQ(static_cast<int>(block.kind), static_cast<int>(StmtKind::kBlock));
    for (StmtId child : block.children) {
      LowerStmt(child);
    }
  }

  int32_t AddLog(const Stmt& stmt) {
    const LogTemplate& tmpl = program->log_template(stmt.log_template);
    FlatLog info;
    info.tmpl = stmt.log_template;
    info.level = tmpl.level;
    info.logger = tmpl.logger;
    info.args = stmt.log_args;
    info.attach_exception = stmt.log_attach_exception;
    std::string segment;
    for (size_t i = 0; i < tmpl.text.size();) {
      if (i + 1 < tmpl.text.size() && tmpl.text[i] == '{' && tmpl.text[i + 1] == '}') {
        info.segments.push_back(std::move(segment));
        segment.clear();
        i += 2;
      } else {
        segment.push_back(tmpl.text[i]);
        ++i;
      }
    }
    info.segments.push_back(std::move(segment));
    info.text_size = tmpl.text.size();
    out->logs_.push_back(std::move(info));
    return static_cast<int32_t>(out->logs_.size()) - 1;
  }

  int32_t AddSend(const Stmt& stmt) {
    FlatSend send;
    send.target_node = stmt.target_node;
    send.target_index_var = stmt.target_index_var;
    send.callee = stmt.callee;
    std::string handler = stmt.handler_thread.empty()
                              ? DefaultHandlerThread(program->method(stmt.callee).name)
                              : stmt.handler_thread;
    send.handler_name = out->InternThreadName(handler);
    send.latency_ms = stmt.latency_ms;
    out->sends_.push_back(std::move(send));
    return static_cast<int32_t>(out->sends_.size()) - 1;
  }

  void LowerStmt(StmtId stmt_id) {
    const Stmt& stmt = method->stmt(stmt_id);
    switch (stmt.kind) {
      case StmtKind::kNop:
        Emit(OpCode::kNop, stmt_id);
        return;

      case StmtKind::kBlock: {
        // Tree: one step to push the cursor, one to pop it when exhausted.
        Emit(OpCode::kNop, stmt_id);
        LowerChildren(stmt_id);
        Emit(OpCode::kNop, stmt_id);
        return;
      }

      case StmtKind::kAssign: {
        FlatOp& op = Emit(OpCode::kAssign, stmt_id);
        op.var = stmt.assign_var;
        op.expr = stmt.expr;
        return;
      }

      case StmtKind::kLog: {
        int32_t aux = AddLog(stmt);
        Emit(OpCode::kLog, stmt_id).aux = aux;
        return;
      }

      case StmtKind::kIf: {
        // kBranch is the If dispatch step. A taken arm executes its children
        // directly (the tree repurposes one cursor, so arm entry is free)
        // and pays one exit step — kJump to merge for the then arm, kNop
        // fall-through for the else arm — matching the tree's cursor pop.
        int32_t branch = Here();
        {
          FlatOp& op = Emit(OpCode::kBranch, stmt_id);
          op.cond = stmt.cond;
        }
        int32_t then_exit = -1;
        if (stmt.then_block != kInvalidId) {
          out->ops_[static_cast<size_t>(branch)].target = Here();
          LowerChildren(stmt.then_block);
          then_exit = Here();
          Emit(OpCode::kJump, stmt_id);
        }
        if (stmt.else_block != kInvalidId) {
          out->ops_[static_cast<size_t>(branch)].target2 = Here();
          LowerChildren(stmt.else_block);
          Emit(OpCode::kNop, stmt_id);
        }
        int32_t merge = Here();
        FlatOp& branch_op = out->ops_[static_cast<size_t>(branch)];
        if (branch_op.target < 0) {
          branch_op.target = merge;
        }
        if (branch_op.target2 < 0) {
          branch_op.target2 = merge;
        }
        if (then_exit >= 0) {
          out->ops_[static_cast<size_t>(then_exit)].target = merge;
        }
        return;
      }

      case StmtKind::kWhile: {
        // kLoopEnter is the While dispatch step (false: straight to merge,
        // one step, like the tree's no-push dispatch). kLoopBack is the
        // end-of-body re-check step; on true it applies the tree's runaway
        // cap before jumping back to the body.
        int32_t slot = loop_depth;
        max_loops = std::max(max_loops, slot + 1);
        int32_t enter = Here();
        {
          FlatOp& op = Emit(OpCode::kLoopEnter, stmt_id);
          op.cond = stmt.cond;
          op.loop_slot = slot;
        }
        int32_t body = Here();
        ++loop_depth;
        break_patches.emplace_back();
        LowerChildren(stmt.then_block);
        --loop_depth;
        {
          FlatOp& op = Emit(OpCode::kLoopBack, stmt_id);
          op.cond = stmt.cond;
          op.loop_slot = slot;
          op.target = body;
        }
        int32_t merge = Here();
        out->ops_[static_cast<size_t>(enter)].target = merge;
        for (int32_t break_jump : break_patches.back()) {
          out->ops_[static_cast<size_t>(break_jump)].target = merge;
        }
        break_patches.pop_back();
        return;
      }

      case StmtKind::kInvoke:
        Emit(OpCode::kInvoke, stmt_id).callee = stmt.callee;
        return;

      case StmtKind::kTryCatch: {
        // kNop is the TryCatch dispatch step. The try body runs under a new
        // handler record; its exit kJump is the tree's try-cursor pop.
        // Catch entry costs zero steps (a raise rewrites pc directly, as
        // the tree rewrites the cursor), and each catch body's exit kJump
        // is its cursor pop. Ops inside a catch body resolve against the
        // *enclosing* handler — the try that caught no longer handles.
        Emit(OpCode::kNop, stmt_id);
        int32_t slot = catch_depth;
        max_caught = std::max(max_caught, slot + 1);
        int32_t handler_id = static_cast<int32_t>(out->handlers_.size());
        {
          FlatHandler handler;
          handler.parent = current_handler;
          handler.caught_slot = slot;
          out->handlers_.push_back(std::move(handler));
        }
        int32_t outer_handler = current_handler;
        current_handler = handler_id;
        LowerChildren(stmt.try_block);
        current_handler = outer_handler;
        std::vector<int32_t> merge_jumps;
        merge_jumps.push_back(Here());
        Emit(OpCode::kJump, stmt_id);
        int32_t outer_caught = current_caught;
        for (const CatchClause& clause : stmt.catches) {
          FlatCatchClause flat_clause;
          flat_clause.type = clause.type;
          flat_clause.target = Here();
          out->handlers_[static_cast<size_t>(handler_id)].clauses.push_back(flat_clause);
          current_caught = slot;
          ++catch_depth;
          LowerChildren(clause.block);
          --catch_depth;
          current_caught = outer_caught;
          merge_jumps.push_back(Here());
          Emit(OpCode::kJump, stmt_id);
        }
        int32_t merge = Here();
        for (int32_t jump : merge_jumps) {
          out->ops_[static_cast<size_t>(jump)].target = merge;
        }
        return;
      }

      case StmtKind::kThrow: {
        if (stmt.exception_type == kInvalidId) {
          Emit(OpCode::kRethrow, stmt_id);
        } else {
          Emit(OpCode::kThrow, stmt_id).exception_type = stmt.exception_type;
        }
        return;
      }

      case StmtKind::kExternalCall: {
        FlatOp& op = Emit(OpCode::kExternalCall, stmt_id);
        ANDURIL_CHECK_NE(op.site, kInvalidId);
        op.transient_every_n = stmt.transient_every_n;
        op.exception_type =
            stmt.throwable_types.empty() ? kInvalidId : stmt.throwable_types.front();
        return;
      }

      case StmtKind::kAwait: {
        FlatOp& op = Emit(OpCode::kAwait, stmt_id);
        op.cond = stmt.cond;
        op.timeout_ms = stmt.timeout_ms;
        op.exception_type = stmt.exception_type;
        return;
      }

      case StmtKind::kSignal:
        Emit(OpCode::kSignal, stmt_id).var = stmt.assign_var;
        return;

      case StmtKind::kSend: {
        int32_t aux = AddSend(stmt);
        FlatOp& op = Emit(OpCode::kSend, stmt_id);
        ANDURIL_CHECK_NE(op.site, kInvalidId);
        op.aux = aux;
        op.expr = stmt.expr;
        return;
      }

      case StmtKind::kSubmit: {
        int32_t name = out->InternThreadName(stmt.executor_thread);
        FlatOp& op = Emit(OpCode::kSubmit, stmt_id);
        op.callee = stmt.callee;
        op.var = stmt.future_var;
        op.expr = stmt.expr;
        op.thread_name = name;
        return;
      }

      case StmtKind::kFutureGet: {
        FlatOp& op = Emit(OpCode::kFutureGet, stmt_id);
        op.var = stmt.future_var;
        op.timeout_ms = stmt.timeout_ms;
        op.exception_type = stmt.exception_type;
        return;
      }

      case StmtKind::kSleep:
        Emit(OpCode::kSleep, stmt_id).sleep_ms = stmt.sleep_ms;
        return;

      case StmtKind::kReturn:
        Emit(OpCode::kReturn, stmt_id);
        return;

      case StmtKind::kBreak: {
        ANDURIL_CHECK(!break_patches.empty()) << "break outside loop escaped the verifier";
        break_patches.back().push_back(Here());
        Emit(OpCode::kJump, stmt_id);
        return;
      }
    }
    ANDURIL_UNREACHABLE();
  }

  FlatMethod Lower() {
    FlatMethod flat;
    flat.id = method->id;
    flat.entry = Here();
    // The root block's children run directly off the task frame (no entry
    // step in the tree), and the frame pop when they are exhausted is the
    // trailing kReturn — unreachable when the method ends in Return.
    LowerChildren(0);
    Emit(OpCode::kReturn, 0);
    flat.loop_slots = max_loops;
    flat.caught_slots = max_caught;
    return flat;
  }
};

FlatProgram::FlatProgram(const Program& program) : program_(&program) {
  ANDURIL_CHECK(program.finalized()) << "program must be finalized before flattening";
  ops_.reserve(program.TotalStmtCount() * 2);
  methods_.reserve(program.method_count());
  for (MethodId m = 0; m < static_cast<MethodId>(program.method_count()); ++m) {
    MethodLowering lowering;
    lowering.out = this;
    lowering.program = &program;
    lowering.method = &program.method(m);
    methods_.push_back(lowering.Lower());
  }
}

int32_t FlatProgram::InternThreadName(const std::string& name) {
  auto it = thread_name_index_.find(name);
  if (it != thread_name_index_.end()) {
    return it->second;
  }
  int32_t id = static_cast<int32_t>(thread_names_.size());
  thread_names_.push_back(name);
  thread_name_index_[name] = id;
  return id;
}

}  // namespace anduril::ir
