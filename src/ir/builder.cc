#include "src/ir/builder.h"

#include "src/util/check.h"

namespace anduril::ir {

MethodBuilder::MethodBuilder(Program* program, const std::string& name) : program_(program) {
  method_id_ = program->FindMethod(name);
  if (method_id_ == kInvalidId) {
    method_id_ = program->DefineMethod(name);
  } else {
    const Method& method = program->method(method_id_);
    ANDURIL_CHECK(method.stmts.size() == 1 && method.stmt(0).children.empty())
        << "method " << name << " already has a body";
  }
  block_stack_.push_back(0);
}

MethodBuilder::~MethodBuilder() {
  if (!built_) {
    Build();
  }
}

void MethodBuilder::Build() {
  ANDURIL_CHECK(!built_);
  ANDURIL_CHECK_EQ(block_stack_.size(), 1u) << "unbalanced block nesting";
  built_ = true;
}

Stmt& MethodBuilder::NewStmt(StmtKind kind, StmtId* id_out) {
  Method& method = program_->method(method_id_);
  StmtId id = static_cast<StmtId>(method.stmts.size());
  method.stmts.emplace_back();
  method.stmts.back().kind = kind;
  ANDURIL_CHECK(!block_stack_.empty());
  method.stmt(block_stack_.back()).children.push_back(id);
  if (id_out != nullptr) {
    *id_out = id;
  }
  return method.stmts.back();
}

StmtId MethodBuilder::NewBlock() {
  Method& method = program_->method(method_id_);
  StmtId id = static_cast<StmtId>(method.stmts.size());
  method.stmts.emplace_back();
  method.stmts.back().kind = StmtKind::kBlock;
  return id;
}

void MethodBuilder::PushBlock(StmtId block) { block_stack_.push_back(block); }

void MethodBuilder::PopBlock() {
  ANDURIL_CHECK_GT(block_stack_.size(), 1u);
  block_stack_.pop_back();
}

void MethodBuilder::FillBlock(StmtId block, const BlockFn& fn) {
  PushBlock(block);
  if (fn) {
    fn();
  }
  PopBlock();
}

MethodId MethodBuilder::DeclareCallee(const std::string& name) {
  MethodId id = program_->FindMethod(name);
  if (id == kInvalidId) {
    id = program_->DefineMethod(name);
  }
  return id;
}

MethodBuilder& MethodBuilder::Nop(const std::string& label) {
  StmtId id;
  Stmt& stmt = NewStmt(StmtKind::kNop, &id);
  stmt.label = label;
  return *this;
}

MethodBuilder& MethodBuilder::Assign(const std::string& var, Expr value) {
  StmtId id;
  VarId var_id = Var(var);  // intern before NewStmt may reallocate
  Stmt& stmt = NewStmt(StmtKind::kAssign, &id);
  stmt.assign_var = var_id;
  stmt.expr = value;
  return *this;
}

MethodBuilder& MethodBuilder::Log(LogLevel level, const std::string& logger,
                                  const std::string& text, std::vector<Expr> args) {
  LogTemplateId tmpl = program_->DefineLogTemplate(level, logger, text);
  StmtId id;
  Stmt& stmt = NewStmt(StmtKind::kLog, &id);
  stmt.log_template = tmpl;
  stmt.log_args = std::move(args);
  return *this;
}

MethodBuilder& MethodBuilder::LogExc(LogLevel level, const std::string& logger,
                                     const std::string& text, std::vector<Expr> args) {
  LogTemplateId tmpl = program_->DefineLogTemplate(level, logger, text);
  StmtId id;
  Stmt& stmt = NewStmt(StmtKind::kLog, &id);
  stmt.log_template = tmpl;
  stmt.log_args = std::move(args);
  stmt.log_attach_exception = true;
  return *this;
}

MethodBuilder& MethodBuilder::Rethrow() {
  StmtId id;
  Stmt& stmt = NewStmt(StmtKind::kThrow, &id);
  stmt.exception_type = kInvalidId;  // marker: rethrow the caught exception
  return *this;
}

MethodBuilder& MethodBuilder::If(Cond cond, const BlockFn& then_fn, const BlockFn& else_fn) {
  StmtId id;
  NewStmt(StmtKind::kIf, &id);
  StmtId then_block = NewBlock();
  StmtId else_block = else_fn ? NewBlock() : kInvalidId;
  {
    Method& method = program_->method(method_id_);
    Stmt& stmt = method.stmt(id);
    stmt.cond = cond;
    stmt.then_block = then_block;
    stmt.else_block = else_block;
  }
  FillBlock(then_block, then_fn);
  if (else_fn) {
    FillBlock(else_block, else_fn);
  }
  return *this;
}

MethodBuilder& MethodBuilder::While(Cond cond, const BlockFn& body_fn) {
  StmtId id;
  NewStmt(StmtKind::kWhile, &id);
  StmtId body = NewBlock();
  {
    Stmt& stmt = program_->method(method_id_).stmt(id);
    stmt.cond = cond;
    stmt.then_block = body;
  }
  FillBlock(body, body_fn);
  return *this;
}

MethodBuilder& MethodBuilder::Invoke(const std::string& method) {
  MethodId callee = DeclareCallee(method);
  StmtId id;
  Stmt& stmt = NewStmt(StmtKind::kInvoke, &id);
  stmt.callee = callee;
  return *this;
}

MethodBuilder& MethodBuilder::TryCatch(const BlockFn& try_fn,
                                       std::vector<std::pair<std::string, BlockFn>> catches) {
  ANDURIL_CHECK(!catches.empty());
  StmtId id;
  NewStmt(StmtKind::kTryCatch, &id);
  StmtId try_block = NewBlock();
  std::vector<StmtId> catch_blocks;
  std::vector<ExceptionTypeId> catch_types;
  for (auto& [type_name, fn] : catches) {
    ExceptionTypeId type = program_->FindException(type_name);
    ANDURIL_CHECK_NE(type, kInvalidId) << "unknown exception type " << type_name;
    catch_types.push_back(type);
    catch_blocks.push_back(NewBlock());
  }
  {
    Stmt& stmt = program_->method(method_id_).stmt(id);
    stmt.try_block = try_block;
    for (size_t i = 0; i < catches.size(); ++i) {
      stmt.catches.push_back(CatchClause{catch_types[i], catch_blocks[i]});
    }
  }
  FillBlock(try_block, try_fn);
  for (size_t i = 0; i < catches.size(); ++i) {
    FillBlock(catch_blocks[i], catches[i].second);
  }
  return *this;
}

MethodBuilder& MethodBuilder::Throw(const std::string& exception_type) {
  ExceptionTypeId type = program_->FindException(exception_type);
  ANDURIL_CHECK_NE(type, kInvalidId) << "unknown exception type " << exception_type;
  StmtId id;
  Stmt& stmt = NewStmt(StmtKind::kThrow, &id);
  stmt.exception_type = type;
  return *this;
}

MethodBuilder& MethodBuilder::External(const std::string& site_name,
                                       std::vector<std::string> throwable_types,
                                       int32_t transient_every_n) {
  std::vector<ExceptionTypeId> types;
  for (const std::string& name : throwable_types) {
    ExceptionTypeId type = program_->FindException(name);
    ANDURIL_CHECK_NE(type, kInvalidId) << "unknown exception type " << name;
    types.push_back(type);
  }
  ANDURIL_CHECK(!types.empty());
  StmtId id;
  Stmt& stmt = NewStmt(StmtKind::kExternalCall, &id);
  stmt.site_name = site_name;
  stmt.throwable_types = std::move(types);
  stmt.exception_type = stmt.throwable_types.front();
  stmt.transient_every_n = transient_every_n;
  return *this;
}

MethodBuilder& MethodBuilder::Await(Cond cond, int64_t timeout_ms,
                                    const std::string& timeout_exception) {
  ExceptionTypeId type = kInvalidId;
  if (!timeout_exception.empty()) {
    type = program_->FindException(timeout_exception);
    ANDURIL_CHECK_NE(type, kInvalidId) << "unknown exception type " << timeout_exception;
    ANDURIL_CHECK_GE(timeout_ms, 0) << "timeout exception requires a timeout";
  }
  StmtId id;
  Stmt& stmt = NewStmt(StmtKind::kAwait, &id);
  stmt.cond = cond;
  stmt.timeout_ms = timeout_ms;
  stmt.exception_type = type;
  return *this;
}

MethodBuilder& MethodBuilder::Signal(const std::string& var) {
  VarId var_id = Var(var);
  StmtId id;
  Stmt& stmt = NewStmt(StmtKind::kSignal, &id);
  stmt.assign_var = var_id;
  return *this;
}

MethodBuilder& MethodBuilder::Send(const std::string& handler_method,
                                   const std::string& target_node, SendOpts opts) {
  MethodId callee = DeclareCallee(handler_method);
  VarId index_var = opts.index_var.empty() ? kInvalidId : Var(opts.index_var);
  StmtId id;
  Stmt& stmt = NewStmt(StmtKind::kSend, &id);
  stmt.callee = callee;
  stmt.target_node = target_node;
  stmt.target_index_var = index_var;
  stmt.expr = opts.payload;
  stmt.handler_thread = opts.handler_thread;
  stmt.latency_ms = opts.latency_ms;
  return *this;
}

MethodBuilder& MethodBuilder::Submit(const std::string& method, const std::string& future_var,
                                     const std::string& executor_thread, Expr payload) {
  MethodId callee = DeclareCallee(method);
  VarId future = Var(future_var);
  StmtId id;
  Stmt& stmt = NewStmt(StmtKind::kSubmit, &id);
  stmt.callee = callee;
  stmt.future_var = future;
  stmt.executor_thread = executor_thread;
  stmt.expr = payload;
  return *this;
}

MethodBuilder& MethodBuilder::FutureGet(const std::string& future_var, int64_t timeout_ms,
                                        const std::string& timeout_exception) {
  ExceptionTypeId type = kInvalidId;
  if (!timeout_exception.empty()) {
    type = program_->FindException(timeout_exception);
    ANDURIL_CHECK_NE(type, kInvalidId);
    ANDURIL_CHECK_GE(timeout_ms, 0);
  }
  VarId future = Var(future_var);
  StmtId id;
  Stmt& stmt = NewStmt(StmtKind::kFutureGet, &id);
  stmt.future_var = future;
  stmt.timeout_ms = timeout_ms;
  stmt.exception_type = type;
  return *this;
}

MethodBuilder& MethodBuilder::Sleep(int64_t ms) {
  StmtId id;
  Stmt& stmt = NewStmt(StmtKind::kSleep, &id);
  stmt.sleep_ms = ms;
  return *this;
}

MethodBuilder& MethodBuilder::Return() {
  NewStmt(StmtKind::kReturn, nullptr);
  return *this;
}

MethodBuilder& MethodBuilder::Break() {
  NewStmt(StmtKind::kBreak, nullptr);
  return *this;
}

}  // namespace anduril::ir
