#include "src/ir/stmt.h"

#include "src/util/check.h"

namespace anduril::ir {

bool Cond::Evaluate(int64_t lhs_value, int64_t rhs_value) const {
  switch (op) {
    case CmpOp::kTrue:
      return true;
    case CmpOp::kEq:
      return lhs_value == rhs_value;
    case CmpOp::kNe:
      return lhs_value != rhs_value;
    case CmpOp::kLt:
      return lhs_value < rhs_value;
    case CmpOp::kLe:
      return lhs_value <= rhs_value;
    case CmpOp::kGt:
      return lhs_value > rhs_value;
    case CmpOp::kGe:
      return lhs_value >= rhs_value;
  }
  ANDURIL_UNREACHABLE();
}

const char* StmtKindName(StmtKind kind) {
  switch (kind) {
    case StmtKind::kBlock:
      return "block";
    case StmtKind::kNop:
      return "nop";
    case StmtKind::kAssign:
      return "assign";
    case StmtKind::kLog:
      return "log";
    case StmtKind::kIf:
      return "if";
    case StmtKind::kWhile:
      return "while";
    case StmtKind::kInvoke:
      return "invoke";
    case StmtKind::kTryCatch:
      return "trycatch";
    case StmtKind::kThrow:
      return "throw";
    case StmtKind::kExternalCall:
      return "external_call";
    case StmtKind::kAwait:
      return "await";
    case StmtKind::kSignal:
      return "signal";
    case StmtKind::kSend:
      return "send";
    case StmtKind::kSubmit:
      return "submit";
    case StmtKind::kFutureGet:
      return "future_get";
    case StmtKind::kSleep:
      return "sleep";
    case StmtKind::kReturn:
      return "return";
    case StmtKind::kBreak:
      return "break";
  }
  ANDURIL_UNREACHABLE();
}

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kTrue:
      return "true";
    case CmpOp::kEq:
      return "==";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  ANDURIL_UNREACHABLE();
}

}  // namespace anduril::ir
