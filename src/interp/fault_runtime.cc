#include "src/interp/fault_runtime.h"

#include <chrono>

#include "src/obs/metrics.h"
#include "src/util/check.h"

namespace anduril::interp {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kException:
      return "exception";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kStall:
      return "stall";
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kDuplicate:
      return "duplicate";
    case FaultKind::kPartition:
      return "partition";
  }
  return "unknown";
}

bool FaultKindFromName(const std::string& name, FaultKind* out) {
  for (FaultKind kind :
       {FaultKind::kException, FaultKind::kCrash, FaultKind::kStall, FaultKind::kDrop,
        FaultKind::kDelay, FaultKind::kDuplicate, FaultKind::kPartition}) {
    if (name == FaultKindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

void FaultRuntime::BeginRun() {
  // Compile the fault plan: dense zeroed counters sized to the program's
  // site registry plus the armed-site bitmap over window + pinned. assign()
  // keeps the buffers' capacity across runs.
  size_t site_count = program_->fault_sites().size();
  occurrences_.assign(site_count, 0);
  armed_.assign((site_count + 63) / 64, 0);
  auto arm = [this](ir::FaultSiteId site) {
    if (site < 0) {
      return;
    }
    size_t word = static_cast<size_t>(site) >> 6;
    if (word >= armed_.size()) {
      armed_.resize(word + 1, 0);
    }
    armed_[word] |= uint64_t{1} << (static_cast<size_t>(site) & 63);
  };
  for (const InjectionCandidate& candidate : window_) {
    arm(candidate.site);
  }
  for (const InjectionCandidate& candidate : pinned_) {
    arm(candidate.site);
  }
  trace_len_ = 0;
  injected_.reset();
  preempted_window_.clear();
  injection_requests_ = 0;
  decision_nanos_ = 0;
  pinned_fired_ = 0;
}

void FaultRuntime::GrowTrace() {
  // A recycled buffer arrives trimmed to the previous run's live prefix
  // (CopyTraceTo swap): fill out its existing capacity before doubling so the
  // steady state value-initializes only the trimmed tail, never reallocates.
  if (trace_.size() < trace_.capacity()) {
    trace_.resize(trace_.capacity());
  } else {
    trace_.resize(trace_.empty() ? 64 : trace_.size() * 2);
  }
}

std::unordered_map<ir::FaultSiteId, int64_t> FaultRuntime::occurrence_counts() const {
  std::unordered_map<ir::FaultSiteId, int64_t> counts;
  for (size_t site = 0; site < occurrences_.size(); ++site) {
    if (occurrences_[site] != 0) {
      counts[static_cast<ir::FaultSiteId>(site)] = occurrences_[site];
    }
  }
  return counts;
}

void FaultRuntime::FlushMetrics(obs::MetricsRegistry* metrics) const {
  metrics->Add("fault.requests", injection_requests_);
  if (injected_.has_value()) {
    metrics->Add(std::string("fault.injected.") + FaultKindName(injected_->kind));
  }
  if (pinned_fired_ > 0) {
    metrics->Add("fault.pinned_fired", pinned_fired_);
  }
  if (!preempted_window_.empty()) {
    metrics->Add("fault.preempted", static_cast<int64_t>(preempted_window_.size()));
  }
}

bool FaultRuntime::Decide(ir::FaultSiteId site, int64_t log_clock, int64_t time_ms,
                          int32_t thread_id, FaultAction* action) {
  ++injection_requests_;
  int64_t occurrence = BumpOccurrence(site);
  action->occurrence = occurrence;
  if (tracing_) {
    TraceAppend(site, occurrence, log_clock, time_ms, thread_id);
  }
  // The legacy hooks scan unconditionally (they may run without BeginRun, so
  // no bitmap is guaranteed); the fast hooks gate this scan on Armed().
  return MatchArmed(site, occurrence, action);
}

bool FaultRuntime::MatchArmed(ir::FaultSiteId site, int64_t occurrence, FaultAction* action) {
  // Pinned faults (iterative multi-fault mode) fire unconditionally and do
  // not consume the window's single injection. A dynamic instance fires at
  // most once: if a window candidate names the same (site, occurrence) as a
  // pinned fault, the pinned fault wins and the window candidate is recorded
  // as pre-empted — not fired a second time, not left armed forever.
  for (const InjectionCandidate& pinned : pinned_) {
    if (pinned.site == site && pinned.occurrence == occurrence) {
      action->kind = pinned.kind;
      action->exception = pinned.kind == FaultKind::kException ? pinned.type : ir::kInvalidId;
      action->fired = pinned.kind != FaultKind::kException;
      ++pinned_fired_;
      if (!injected_.has_value()) {
        for (const InjectionCandidate& candidate : window_) {
          if (candidate.site == site && candidate.occurrence == occurrence) {
            preempted_window_.push_back(candidate);
            break;
          }
        }
      }
      return true;
    }
  }
  // Window injection: first candidate instance reached fires (§5.2.5). At
  // most one injection per run.
  if (!injected_.has_value()) {
    for (const InjectionCandidate& candidate : window_) {
      if (candidate.site == site && candidate.occurrence == occurrence) {
        injected_ = candidate;
        action->kind = candidate.kind;
        action->exception =
            candidate.kind == FaultKind::kException ? candidate.type : ir::kInvalidId;
        action->fired = candidate.kind != FaultKind::kException;
        action->injected = true;
        return true;
      }
    }
  }
  return false;
}

FaultAction FaultRuntime::OnExternalCall(ir::FaultSiteId site, const ir::Stmt& stmt,
                                         int64_t log_clock, int64_t time_ms,
                                         int32_t thread_id) {
  auto start = std::chrono::steady_clock::now();
  FaultAction action;
  bool fired = Decide(site, log_clock, time_ms, thread_id, &action);
  ANDURIL_CHECK(!fired || !IsNetworkFaultKind(action.kind))
      << "network fault armed at external-call site " << program_->fault_site(site).name;
  // Natural transient failure (deterministic, present in fault-free runs
  // too): models handled errors that make production logs noisy.
  if (!fired && stmt.transient_every_n > 0 &&
      action.occurrence % stmt.transient_every_n == 0) {
    action.exception = stmt.throwable_types.front();
  }
  decision_nanos_ +=
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                           start)
          .count();
  return action;
}

FaultAction FaultRuntime::OnSend(ir::FaultSiteId site, int64_t log_clock, int64_t time_ms,
                                 int32_t thread_id) {
  auto start = std::chrono::steady_clock::now();
  FaultAction action;
  bool fired = Decide(site, log_clock, time_ms, thread_id, &action);
  ANDURIL_CHECK(!fired || IsNetworkFaultKind(action.kind))
      << "non-network fault armed at send site " << program_->fault_site(site).name;
  decision_nanos_ +=
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                           start)
          .count();
  return action;
}

bool FaultRuntime::ExternalCallMatchArmed(ir::FaultSiteId site, int64_t occurrence,
                                          FaultAction* action) {
  bool matched = MatchArmed(site, occurrence, action);
  ANDURIL_CHECK(!matched || !IsNetworkFaultKind(action->kind))
      << "network fault armed at external-call site " << program_->fault_site(site).name;
  return matched;
}

bool FaultRuntime::SendMatchArmed(ir::FaultSiteId site, int64_t occurrence,
                                  FaultAction* action) {
  bool matched = MatchArmed(site, occurrence, action);
  ANDURIL_CHECK(!matched || IsNetworkFaultKind(action->kind))
      << "non-network fault armed at send site " << program_->fault_site(site).name;
  return matched;
}

FaultAction FaultRuntime::OnExternalCallFastTimed(ir::FaultSiteId site,
                                                  ir::ExceptionTypeId transient_type,
                                                  int32_t transient_every_n, int64_t log_clock,
                                                  int64_t time_ms, int32_t thread_id) {
  auto start = std::chrono::steady_clock::now();
  FaultAction action = ExternalCallFastImpl(site, transient_type, transient_every_n,
                                            log_clock, time_ms, thread_id);
  decision_nanos_ += kDecisionSample * std::chrono::duration_cast<std::chrono::nanoseconds>(
                                           std::chrono::steady_clock::now() - start)
                                           .count();
  return action;
}

FaultAction FaultRuntime::OnSendFastTimed(ir::FaultSiteId site, int64_t log_clock,
                                          int64_t time_ms, int32_t thread_id) {
  auto start = std::chrono::steady_clock::now();
  FaultAction action = SendFastImpl(site, log_clock, time_ms, thread_id);
  decision_nanos_ += kDecisionSample * std::chrono::duration_cast<std::chrono::nanoseconds>(
                                           std::chrono::steady_clock::now() - start)
                                           .count();
  return action;
}

}  // namespace anduril::interp
