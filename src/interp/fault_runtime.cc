#include "src/interp/fault_runtime.h"

#include <chrono>

#include "src/util/check.h"

namespace anduril::interp {

void FaultRuntime::BeginRun() {
  occurrences_.clear();
  trace_.clear();
  injected_.reset();
  injection_requests_ = 0;
  decision_nanos_ = 0;
}

ir::ExceptionTypeId FaultRuntime::OnExternalCall(ir::FaultSiteId site, const ir::Stmt& stmt,
                                                 int64_t log_clock, int64_t time_ms,
                                                 int32_t thread_id, bool* injected) {
  auto start = std::chrono::steady_clock::now();
  *injected = false;
  ++injection_requests_;
  int64_t occurrence = ++occurrences_[site];
  if (tracing_) {
    trace_.push_back(FaultInstanceEvent{site, occurrence, log_clock, time_ms, thread_id});
  }

  ir::ExceptionTypeId result = ir::kInvalidId;
  // Pinned faults (iterative multi-fault mode) fire unconditionally and do
  // not consume the window's single injection.
  for (const InjectionCandidate& pinned : pinned_) {
    if (pinned.site == site && pinned.occurrence == occurrence) {
      result = pinned.type;
      break;
    }
  }
  // Window injection: first candidate instance reached fires (§5.2.5). At
  // most one injection per run.
  if (result == ir::kInvalidId && !injected_.has_value()) {
    for (const InjectionCandidate& candidate : window_) {
      if (candidate.site == site && candidate.occurrence == occurrence) {
        injected_ = candidate;
        *injected = true;
        result = candidate.type;
        break;
      }
    }
  }
  // Natural transient failure (deterministic, present in fault-free runs
  // too): models handled errors that make production logs noisy.
  if (result == ir::kInvalidId && stmt.transient_every_n > 0 &&
      occurrence % stmt.transient_every_n == 0) {
    result = stmt.throwable_types.front();
  }
  decision_nanos_ +=
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                           start)
          .count();
  return result;
}

}  // namespace anduril::interp
