#include "src/interp/network_model.h"

#include <algorithm>

#include "src/obs/metrics.h"
#include "src/util/rng.h"

namespace anduril::interp {

int64_t NetworkModel::DelayFor(ir::FaultSiteId site, int64_t occurrence, int64_t fixed_ms) {
  ++stats_.delayed;
  if (fixed_ms > 0) {
    return fixed_ms;
  }
  // Pure function of (seed, site, occurrence): the same instance delays by
  // the same amount in every run at this seed.
  uint64_t state = seed_ ^ (static_cast<uint64_t>(site) * 0x9e3779b97f4a7c15ull) ^
                   (static_cast<uint64_t>(occurrence) << 32);
  return 20 + static_cast<int64_t>(SplitMix64Next(&state) % 100);
}

void NetworkModel::Sever(int32_t src, int32_t dst, int64_t now, int64_t heal_after_ms) {
  HealExpired(now);
  Partition partition;
  partition.node_a = std::min(src, dst);
  partition.node_b = std::max(src, dst);
  partition.heal_at = heal_after_ms > 0 ? now + heal_after_ms : -1;
  partitions_.push_back(partition);
  ++stats_.partitions_severed;
  events_.push_back(PartitionEvent{now, partition.node_a, partition.node_b, true});
}

bool NetworkModel::SeveredDrop(int32_t src, int32_t dst, int64_t now) {
  HealExpired(now);
  int32_t a = std::min(src, dst);
  int32_t b = std::max(src, dst);
  for (const Partition& partition : partitions_) {
    if (!partition.healed && partition.node_a == a && partition.node_b == b) {
      ++stats_.dropped_by_partition;
      return true;
    }
  }
  return false;
}

bool NetworkModel::CrashedDrop(int32_t dst) {
  if (crashed_.count(dst) == 0) {
    return false;
  }
  ++stats_.dropped_to_crashed;
  return true;
}

bool NetworkModel::HasUnhealedPartition(int64_t now) {
  HealExpired(now);
  for (const Partition& partition : partitions_) {
    if (!partition.healed) {
      return true;
    }
  }
  return false;
}

std::vector<PartitionEvent> NetworkModel::TakeEvents() {
  // Heals are recorded when first observed past their deadline, which can be
  // out of order relative to later severs; restore chronological order.
  std::stable_sort(events_.begin(), events_.end(),
                   [](const PartitionEvent& x, const PartitionEvent& y) {
                     return x.time_ms < y.time_ms;
                   });
  return std::move(events_);
}

void NetworkModel::FlushMetrics(obs::MetricsRegistry* metrics) const {
  metrics->Add("net.messages_sent", stats_.messages_sent);
  metrics->Add("net.dropped_by_fault", stats_.dropped_by_fault);
  metrics->Add("net.dropped_by_partition", stats_.dropped_by_partition);
  metrics->Add("net.dropped_to_crashed", stats_.dropped_to_crashed);
  metrics->Add("net.delayed", stats_.delayed);
  metrics->Add("net.duplicated", stats_.duplicated);
  metrics->Add("net.partitions_severed", stats_.partitions_severed);
  metrics->Add("net.partitions_healed", stats_.partitions_healed);
}

void NetworkModel::HealExpired(int64_t now) {
  for (Partition& partition : partitions_) {
    if (!partition.healed && partition.heal_at >= 0 && now >= partition.heal_at) {
      partition.healed = true;
      ++stats_.partitions_healed;
      events_.push_back(
          PartitionEvent{partition.heal_at, partition.node_a, partition.node_b, false});
    }
  }
}

}  // namespace anduril::interp
