#include "src/interp/run_result.h"

#include "src/util/strings.h"

namespace anduril::interp {

const char* RunOutcomeName(RunOutcome outcome) {
  switch (outcome) {
    case RunOutcome::kCompleted:
      return "completed";
    case RunOutcome::kCrashed:
      return "crashed";
    case RunOutcome::kHung:
      return "hung";
    case RunOutcome::kBudgetExceeded:
      return "budget-exceeded";
    case RunOutcome::kPartitionedStuck:
      return "partitioned-stuck";
  }
  return "unknown";
}

bool RunResult::HasLogContaining(const std::string& needle) const {
  for (const LogEntry& entry : log) {
    if (Contains(entry.message, needle)) {
      return true;
    }
  }
  return false;
}

bool RunResult::HasLogContaining(ir::LogLevel level, const std::string& needle) const {
  for (const LogEntry& entry : log) {
    if (entry.level == level && Contains(entry.message, needle)) {
      return true;
    }
  }
  return false;
}

int RunResult::CountLogContaining(const std::string& needle) const {
  int count = 0;
  for (const LogEntry& entry : log) {
    if (Contains(entry.message, needle)) {
      ++count;
    }
  }
  return count;
}

bool RunResult::IsThreadStuck(const std::string& name_substr) const {
  for (const ThreadSummary& thread : threads) {
    if (thread.state == ThreadEndState::kBlocked &&
        Contains(thread.node + "/" + thread.name, name_substr)) {
      return true;
    }
  }
  return false;
}

bool RunResult::IsThreadStuckIn(const ir::Program& program, const std::string& name_substr,
                                const std::string& method) const {
  ir::MethodId target = program.FindMethod(method);
  for (const ThreadSummary& thread : threads) {
    if (thread.state == ThreadEndState::kBlocked &&
        Contains(thread.node + "/" + thread.name, name_substr) &&
        thread.current_method == target) {
      return true;
    }
  }
  return false;
}

bool RunResult::DidThreadDie(const std::string& name_substr) const {
  for (const ThreadSummary& thread : threads) {
    if (thread.state == ThreadEndState::kDied &&
        Contains(thread.node + "/" + thread.name, name_substr)) {
      return true;
    }
  }
  return false;
}

bool RunResult::DidNodeCrash(const std::string& node) const {
  for (const std::string& crashed : crashed_nodes) {
    if (crashed == node) {
      return true;
    }
  }
  return false;
}

int64_t RunResult::NodeVar(const ir::Program& program, const std::string& node,
                           const std::string& var) const {
  auto node_it = node_vars.find(node);
  if (node_it == node_vars.end()) {
    return 0;
  }
  // InternVar is non-const; search by name instead.
  for (const auto& [var_id, value] : node_it->second) {
    if (program.var_name(var_id) == var) {
      return value;
    }
  }
  return 0;
}

}  // namespace anduril::interp
