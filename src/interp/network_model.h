// Per-run network state, owned by the Simulator. Every cross-node message
// (kSend delivery) routes through this model, which
//
//   * applies fired network faults: drop, deterministic seed-derived delay,
//     duplicate delivery, and (src, dst) node-pair partitions with an
//     optional healing timer,
//   * filters deliveries to crashed nodes (so crash faults and network
//     faults compose in one place instead of relying on the event loop's
//     dead-thread check),
//   * records sever/heal transitions and per-category delivery statistics
//     for the run result.
//
// Determinism: the model draws nothing from the simulator's Rng. Delays are
// a pure function of (run seed, site, occurrence); partitions heal lazily at
// the first query past their deadline, and the recorded heal event carries
// the deadline itself, so two runs at the same seed produce identical
// transition lists.

#ifndef ANDURIL_SRC_INTERP_NETWORK_MODEL_H_
#define ANDURIL_SRC_INTERP_NETWORK_MODEL_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "src/ir/types.h"

namespace anduril::obs {
class MetricsRegistry;
}  // namespace anduril::obs

namespace anduril::interp {

// Delivery and fault statistics for one run.
struct NetworkStats {
  int64_t messages_sent = 0;         // kSend statements executed
  int64_t dropped_by_fault = 0;      // kDrop injections
  int64_t dropped_by_partition = 0;  // messages crossing a severed pair
  int64_t dropped_to_crashed = 0;    // in-flight messages to a crashed node
  int64_t delayed = 0;               // kDelay injections
  int64_t duplicated = 0;            // kDuplicate injections
  int64_t partitions_severed = 0;
  int64_t partitions_healed = 0;

  friend bool operator==(const NetworkStats&, const NetworkStats&) = default;
};

// A partition sever/heal transition (node indices; the simulator resolves
// them to names in the RunResult).
struct PartitionEvent {
  int64_t time_ms = 0;
  int32_t node_a = 0;  // node_a < node_b
  int32_t node_b = 0;
  bool sever = true;   // false = heal
};

class NetworkModel {
 public:
  explicit NetworkModel(uint64_t seed) : seed_(seed) {}

  // --- Fault application ------------------------------------------------------
  void OnMessageSent() { ++stats_.messages_sent; }
  void DropMessage() { ++stats_.dropped_by_fault; }
  void DuplicateMessage() { ++stats_.duplicated; }

  // Extra delivery latency (simulated ms) for a kDelay fault at the given
  // dynamic instance. `fixed_ms` > 0 (ClusterSpec::network_delay_ms)
  // overrides the seed-derived value, which lies in [20, 120).
  int64_t DelayFor(ir::FaultSiteId site, int64_t occurrence, int64_t fixed_ms);

  // Severs the (src, dst) pair both ways at `now`. `heal_after_ms` > 0 arms
  // a healing timer; <= 0 means the partition never heals.
  void Sever(int32_t src, int32_t dst, int64_t now, int64_t heal_after_ms);

  // True when a message between `src` and `dst` crossing the network at
  // `now` must be dropped (and counted) because the pair is severed. Heals
  // expired partitions first.
  bool SeveredDrop(int32_t src, int32_t dst, int64_t now);

  // --- Crashed-node filtering -------------------------------------------------
  void MarkCrashed(int32_t node) { crashed_.insert(node); }
  // True when the in-flight message must be dropped (and counted) because
  // its destination node crashed.
  bool CrashedDrop(int32_t dst);

  // --- Run-end queries --------------------------------------------------------
  bool partition_fired() const { return !partitions_.empty(); }
  // Heals expired partitions up to `now`, then reports whether any severed
  // pair remains.
  bool HasUnhealedPartition(int64_t now);

  const NetworkStats& stats() const { return stats_; }
  // Sever/heal transitions in chronological order (call after the run ends).
  std::vector<PartitionEvent> TakeEvents();

  // Folds this run's delivery statistics into the registry under "net.*".
  // Every stat is emitted (zeros included) so the key set is stable across
  // runs and scenarios.
  void FlushMetrics(obs::MetricsRegistry* metrics) const;

 private:
  struct Partition {
    int32_t node_a = 0;  // node_a < node_b
    int32_t node_b = 0;
    int64_t heal_at = -1;  // -1 = never
    bool healed = false;
  };

  // Marks every partition whose deadline passed as healed, recording the
  // heal event at its deadline.
  void HealExpired(int64_t now);

  uint64_t seed_ = 0;
  NetworkStats stats_;
  std::vector<Partition> partitions_;
  std::unordered_set<int32_t> crashed_;
  std::vector<PartitionEvent> events_;
};

}  // namespace anduril::interp

#endif  // ANDURIL_SRC_INTERP_NETWORK_MODEL_H_
