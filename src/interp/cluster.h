// Cluster topology and workload description for a simulated run.
//
// A ClusterSpec lists the nodes of the simulated distributed system, the
// threads started at boot (server loops, daemons) and the workload tasks
// (client requests) injected at given times. Everything else — handler
// threads for messages, executor threads for submitted tasks — is created
// lazily by the interpreter.

#ifndef ANDURIL_SRC_INTERP_CLUSTER_H_
#define ANDURIL_SRC_INTERP_CLUSTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/ir/types.h"

namespace anduril::interp {

struct InitialTask {
  std::string node;
  std::string thread;
  ir::MethodId method = ir::kInvalidId;
  int64_t start_ms = 0;
  int64_t payload = 0;
};

struct InitialValue {
  std::string node;
  ir::VarId var = ir::kInvalidId;
  int64_t value = 0;
};

struct ClusterSpec {
  std::vector<std::string> nodes;
  std::vector<InitialTask> tasks;
  std::vector<InitialValue> initial_values;
  // Simulated-time budget for a run. Threads still blocked when the event
  // queue drains (or the limit is hit) are reported as stuck.
  int64_t time_limit_ms = 120'000;
  // Hard cap on interpreted statements, as a runaway-loop backstop.
  int64_t step_limit = 20'000'000;
  // Host wall-clock budget per run, enforced cooperatively by the
  // simulator's watchdog (checked at every event and every few thousand
  // steps). 0 = unlimited. A normal run takes well under a millisecond, so
  // the default only trips when a run is genuinely wedged; the explorer
  // classifies such runs as transient and retries them.
  int64_t wall_budget_ms = 10'000;
  // --- Network fault parameters (only consulted when a network fault fires) --
  // kPartition: simulated ms until a severed node pair heals. 0 = never
  // heals (the partition outlives the run unless nothing depends on it).
  int64_t partition_heal_ms = 0;
  // kDelay: fixed extra delivery latency in simulated ms. 0 = seed-derived
  // per (site, occurrence), in [20, 120) ms (see NetworkModel::DelayFor).
  int64_t network_delay_ms = 0;

  void AddNode(const std::string& name) { nodes.push_back(name); }
  void AddTask(const std::string& node, const std::string& thread, ir::MethodId method,
               int64_t start_ms = 0, int64_t payload = 0) {
    tasks.push_back(InitialTask{node, thread, method, start_ms, payload});
  }
  void SetVar(const std::string& node, ir::VarId var, int64_t value) {
    initial_values.push_back(InitialValue{node, var, value});
  }
};

}  // namespace anduril::interp

#endif  // ANDURIL_SRC_INTERP_CLUSTER_H_
