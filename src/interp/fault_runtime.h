// Fault-injection runtime: the C++ analog of the paper's instrumented
// FIR.traceSite / FIR.throwIfEnabled hooks (Figure 3).
//
// Every ExternalCall statement consults this runtime when executed. The
// runtime (1) traces the dynamic fault *instance* (site + occurrence, with
// its position on the log-message timeline — the "logical clock" used for
// temporal distance in §5.2.3), and (2) decides whether to inject.
//
// The explorer hands the runtime a *window* of candidate instances
// (§5.2.5 flexible priority window): the first candidate whose (site,
// occurrence) is reached gets injected, even if it is not the top-priority
// one. A run injects at most one fault (single-root-cause scope, §2).
//
// Thread compatibility: the runtime reads the Program through a const
// pointer and keeps all per-run state (occurrence counters, trace) in its
// own members, so one runtime per concurrent simulation over a shared
// Program is safe. A single FaultRuntime instance serves one run at a time.

#ifndef ANDURIL_SRC_INTERP_FAULT_RUNTIME_H_
#define ANDURIL_SRC_INTERP_FAULT_RUNTIME_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/ir/program.h"
#include "src/ir/types.h"

namespace anduril::obs {
class MetricsRegistry;
}  // namespace anduril::obs

namespace anduril::interp {

// What a fault does when it fires at a dynamic instance.
//
//   kException — the external call throws `type` (the original model).
//   kCrash     — the whole node halts at the call: every thread on it stops,
//                queued and in-flight work is discarded, and the per-thread
//                log is truncated at the crash point.
//   kStall     — the call blocks forever; the thread wedges until the run's
//                budget expires (a hang, not a death).
//
// Network kinds fire at kSend sites (the message layer) instead of external
// calls:
//
//   kDrop      — the message is discarded; the handler never runs.
//   kDelay     — delivery is deferred by a deterministic, seed-derived
//                number of simulated milliseconds (ClusterSpec::
//                network_delay_ms overrides the derived value).
//   kDuplicate — the message is delivered twice.
//   kPartition — the (src, dst) node pair is severed both ways; every
//                message crossing the pair — including ones already in
//                flight — is dropped until the partition heals
//                (ClusterSpec::partition_heal_ms; 0 = never).
enum class FaultKind : uint8_t { kException, kCrash, kStall, kDrop, kDelay, kDuplicate,
                                 kPartition };

const char* FaultKindName(FaultKind kind);

// True for the message-layer kinds, which fire at kSend fault sites; the
// other kinds fire at kExternal sites.
inline bool IsNetworkFaultKind(FaultKind kind) {
  return kind == FaultKind::kDrop || kind == FaultKind::kDelay ||
         kind == FaultKind::kDuplicate || kind == FaultKind::kPartition;
}

// One candidate dynamic fault instance: inject a fault of `kind` at the
// `occurrence`-th (1-based) execution of `site`. `type` is the exception to
// throw for kException and kInvalidId for every other kind.
struct InjectionCandidate {
  ir::FaultSiteId site = ir::kInvalidId;
  int64_t occurrence = 0;
  ir::ExceptionTypeId type = ir::kInvalidId;
  FaultKind kind = FaultKind::kException;

  friend bool operator==(const InjectionCandidate&, const InjectionCandidate&) = default;
};

// The runtime's decision for one external-call or send execution.
struct FaultAction {
  FaultKind kind = FaultKind::kException;
  // Exception to throw (injected, pinned, or natural transient); kInvalidId
  // means no exception. Only meaningful when kind == kException.
  ir::ExceptionTypeId exception = ir::kInvalidId;
  // True when a non-exception fault (crash/stall/network) fired here.
  bool fired = false;
  // True only for a *window* injection (not pinned, not natural transient).
  bool injected = false;
  // The 1-based dynamic occurrence of the site this decision was made for
  // (the simulator folds it into the seed-derived delay for kDelay).
  int64_t occurrence = 0;
};

// A traced execution of a fault site.
struct FaultInstanceEvent {
  ir::FaultSiteId site = ir::kInvalidId;
  int64_t occurrence = 0;  // 1-based per-site counter
  int64_t log_clock = 0;   // number of log messages emitted before this point
  int64_t time_ms = 0;
  int32_t thread_id = 0;
};

class FaultRuntime {
 public:
  explicit FaultRuntime(const ir::Program* program) : program_(program) {}

  // Installs the candidate window for the next run. Empty window = fault-free.
  void SetWindow(std::vector<InjectionCandidate> window) { window_ = std::move(window); }

  // Faults injected unconditionally (each at its own site+occurrence), in
  // addition to the single window injection. Used by the iterative
  // multi-fault mode (§3): a previously-identified root cause is "fixed into
  // the workload" while the search continues for the next one.
  void SetPinned(std::vector<InjectionCandidate> pinned) { pinned_ = std::move(pinned); }

  // Enables/disables instance tracing (tracing is cheap but the trace can be
  // large; baselines that do not need it can turn it off).
  void set_tracing(bool enabled) { tracing_ = enabled; }

  // Called by the interpreter right before an external call executes.
  // Returns the action to take: throw an exception (injected, pinned, or
  // natural transient), crash the node, stall the call, or proceed normally.
  FaultAction OnExternalCall(ir::FaultSiteId site, const ir::Stmt& stmt, int64_t log_clock,
                             int64_t time_ms, int32_t thread_id);

  // Called by the interpreter right before a Send statement hands its
  // message to the network. Same tracing and window/pinned matching as
  // OnExternalCall, but the only kinds that can fire are the network ones
  // (drop/delay/duplicate/partition) and there is no natural transient.
  FaultAction OnSend(ir::FaultSiteId site, int64_t log_clock, int64_t time_ms,
                     int32_t thread_id);

  // Resets per-run state (occurrence counters, trace, request count) while
  // keeping the window configuration.
  void BeginRun();

  // --- Post-run accessors ----------------------------------------------------
  const std::vector<FaultInstanceEvent>& trace() const { return trace_; }
  std::vector<FaultInstanceEvent> TakeTrace() { return std::move(trace_); }
  // The candidate that actually fired this run, if any.
  const std::optional<InjectionCandidate>& injected() const { return injected_; }
  // Number of times the hooks consulted the runtime (paper Table 4/8
  // "Inject. Req.").
  int64_t injection_requests() const { return injection_requests_; }
  // Per-site dynamic occurrence counts observed this run.
  const std::unordered_map<ir::FaultSiteId, int64_t>& occurrence_counts() const {
    return occurrences_;
  }
  // Cumulative time spent inside injection decisions, for Table 4 latency.
  int64_t decision_nanos() const { return decision_nanos_; }
  // Window candidates whose (site, occurrence) was claimed by a pinned fault
  // this run. The pinned fault fires (once — never a double injection); the
  // pre-empted window candidate is reported here so the search can retire it
  // instead of re-arming it forever.
  const std::vector<InjectionCandidate>& preempted_window() const { return preempted_window_; }
  // Pinned-fault firings this run (each pinned instance fires at most once).
  int64_t pinned_fired() const { return pinned_fired_; }

  // Folds this run's fault accounting ("fault.requests",
  // "fault.injected.<kind>", "fault.pinned_fired", "fault.preempted") into
  // the registry. Called by the simulator at the end of Run() when a metrics
  // sink is attached.
  void FlushMetrics(obs::MetricsRegistry* metrics) const;

 private:
  // Shared pinned/window matching: traces the instance, fills `action` and
  // returns true when a pinned or window candidate fired at (site,
  // occurrence). Natural transients are the caller's (OnExternalCall's)
  // business.
  bool Decide(ir::FaultSiteId site, int64_t log_clock, int64_t time_ms, int32_t thread_id,
              FaultAction* action);

  const ir::Program* program_;
  std::vector<InjectionCandidate> window_;
  std::vector<InjectionCandidate> pinned_;
  bool tracing_ = true;

  std::unordered_map<ir::FaultSiteId, int64_t> occurrences_;
  std::vector<FaultInstanceEvent> trace_;
  std::optional<InjectionCandidate> injected_;
  std::vector<InjectionCandidate> preempted_window_;
  int64_t injection_requests_ = 0;
  int64_t decision_nanos_ = 0;
  int64_t pinned_fired_ = 0;
};

}  // namespace anduril::interp

#endif  // ANDURIL_SRC_INTERP_FAULT_RUNTIME_H_
