// Fault-injection runtime: the C++ analog of the paper's instrumented
// FIR.traceSite / FIR.throwIfEnabled hooks (Figure 3).
//
// Every ExternalCall statement consults this runtime when executed. The
// runtime (1) traces the dynamic fault *instance* (site + occurrence, with
// its position on the log-message timeline — the "logical clock" used for
// temporal distance in §5.2.3), and (2) decides whether to inject.
//
// The explorer hands the runtime a *window* of candidate instances
// (§5.2.5 flexible priority window): the first candidate whose (site,
// occurrence) is reached gets injected, even if it is not the top-priority
// one. A run injects at most one fault (single-root-cause scope, §2).
//
// Thread compatibility: the runtime reads the Program through a const
// pointer and keeps all per-run state (occurrence counters, trace) in its
// own members, so one runtime per concurrent simulation over a shared
// Program is safe. A single FaultRuntime instance serves one run at a time.

#ifndef ANDURIL_SRC_INTERP_FAULT_RUNTIME_H_
#define ANDURIL_SRC_INTERP_FAULT_RUNTIME_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/ir/program.h"
#include "src/ir/types.h"

namespace anduril::obs {
class MetricsRegistry;
}  // namespace anduril::obs

namespace anduril::interp {

// What a fault does when it fires at a dynamic instance.
//
//   kException — the external call throws `type` (the original model).
//   kCrash     — the whole node halts at the call: every thread on it stops,
//                queued and in-flight work is discarded, and the per-thread
//                log is truncated at the crash point.
//   kStall     — the call blocks forever; the thread wedges until the run's
//                budget expires (a hang, not a death).
//
// Network kinds fire at kSend sites (the message layer) instead of external
// calls:
//
//   kDrop      — the message is discarded; the handler never runs.
//   kDelay     — delivery is deferred by a deterministic, seed-derived
//                number of simulated milliseconds (ClusterSpec::
//                network_delay_ms overrides the derived value).
//   kDuplicate — the message is delivered twice.
//   kPartition — the (src, dst) node pair is severed both ways; every
//                message crossing the pair — including ones already in
//                flight — is dropped until the partition heals
//                (ClusterSpec::partition_heal_ms; 0 = never).
enum class FaultKind : uint8_t { kException, kCrash, kStall, kDrop, kDelay, kDuplicate,
                                 kPartition };

const char* FaultKindName(FaultKind kind);

// Inverse of FaultKindName. Returns false (leaving *out untouched) for an
// unrecognized name — callers turn that into their own actionable error.
bool FaultKindFromName(const std::string& name, FaultKind* out);

// True for the message-layer kinds, which fire at kSend fault sites; the
// other kinds fire at kExternal sites.
inline bool IsNetworkFaultKind(FaultKind kind) {
  return kind == FaultKind::kDrop || kind == FaultKind::kDelay ||
         kind == FaultKind::kDuplicate || kind == FaultKind::kPartition;
}

// One candidate dynamic fault instance: inject a fault of `kind` at the
// `occurrence`-th (1-based) execution of `site`. `type` is the exception to
// throw for kException and kInvalidId for every other kind.
struct InjectionCandidate {
  ir::FaultSiteId site = ir::kInvalidId;
  int64_t occurrence = 0;
  ir::ExceptionTypeId type = ir::kInvalidId;
  FaultKind kind = FaultKind::kException;

  friend bool operator==(const InjectionCandidate&, const InjectionCandidate&) = default;
};

// The runtime's decision for one external-call or send execution.
struct FaultAction {
  FaultKind kind = FaultKind::kException;
  // Exception to throw (injected, pinned, or natural transient); kInvalidId
  // means no exception. Only meaningful when kind == kException.
  ir::ExceptionTypeId exception = ir::kInvalidId;
  // True when a non-exception fault (crash/stall/network) fired here.
  bool fired = false;
  // True only for a *window* injection (not pinned, not natural transient).
  bool injected = false;
  // The 1-based dynamic occurrence of the site this decision was made for
  // (the simulator folds it into the seed-derived delay for kDelay).
  int64_t occurrence = 0;
};

// A traced execution of a fault site.
struct FaultInstanceEvent {
  ir::FaultSiteId site = ir::kInvalidId;
  int64_t occurrence = 0;  // 1-based per-site counter
  int64_t log_clock = 0;   // number of log messages emitted before this point
  int64_t time_ms = 0;
  int32_t thread_id = 0;
};

class FaultRuntime {
 public:
  explicit FaultRuntime(const ir::Program* program) : program_(program) {}

  // Installs the candidate window for the next run. Empty window = fault-free.
  void SetWindow(std::vector<InjectionCandidate> window) { window_ = std::move(window); }

  // Faults injected unconditionally (each at its own site+occurrence), in
  // addition to the single window injection. Used by the iterative
  // multi-fault mode (§3): a previously-identified root cause is "fixed into
  // the workload" while the search continues for the next one.
  void SetPinned(std::vector<InjectionCandidate> pinned) { pinned_ = std::move(pinned); }

  // Enables/disables instance tracing (tracing is cheap but the trace can be
  // large; baselines that do not need it can turn it off).
  void set_tracing(bool enabled) { tracing_ = enabled; }

  // Called by the interpreter right before an external call executes.
  // Returns the action to take: throw an exception (injected, pinned, or
  // natural transient), crash the node, stall the call, or proceed normally.
  FaultAction OnExternalCall(ir::FaultSiteId site, const ir::Stmt& stmt, int64_t log_clock,
                             int64_t time_ms, int32_t thread_id);

  // Called by the interpreter right before a Send statement hands its
  // message to the network. Same tracing and window/pinned matching as
  // OnExternalCall, but the only kinds that can fire are the network ones
  // (drop/delay/duplicate/partition) and there is no natural transient.
  FaultAction OnSend(ir::FaultSiteId site, int64_t log_clock, int64_t time_ms,
                     int32_t thread_id);

  // Hot-path variants used by the flattened interpreter, with the
  // statement's transient parameters pre-decoded by the flattener. Decision
  // semantics and tracing are identical to the legacy hooks above; the
  // difference is cost. The per-site occurrence bump is a dense-array
  // increment and the armed check is one bitmap word load + branch (built by
  // BeginRun from the window + pinned sets), so the common not-armed case
  // never hashes — and the whole not-armed path is inlined into the
  // dispatch loop (only the armed candidate scan and the timed stride leave
  // the header). Decision latency is sampled — every kDecisionSample-th
  // request is timed and extrapolated — instead of reading the clock twice
  // per request; decision_nanos() stays an estimate of the same quantity.
  // Requires BeginRun() (the armed bitmap is compiled there).
  FaultAction OnExternalCallFast(ir::FaultSiteId site, ir::ExceptionTypeId transient_type,
                                 int32_t transient_every_n, int64_t log_clock,
                                 int64_t time_ms, int32_t thread_id) {
    if ((injection_requests_ & (kDecisionSample - 1)) == 0) {
      return OnExternalCallFastTimed(site, transient_type, transient_every_n, log_clock,
                                     time_ms, thread_id);
    }
    return ExternalCallFastImpl(site, transient_type, transient_every_n, log_clock, time_ms,
                                thread_id);
  }
  FaultAction OnSendFast(ir::FaultSiteId site, int64_t log_clock, int64_t time_ms,
                         int32_t thread_id) {
    if ((injection_requests_ & (kDecisionSample - 1)) == 0) {
      return OnSendFastTimed(site, log_clock, time_ms, thread_id);
    }
    return SendFastImpl(site, log_clock, time_ms, thread_id);
  }

  // Resets per-run state (occurrence counters, trace, request count) while
  // keeping the window configuration.
  void BeginRun();

  // --- Post-run accessors ----------------------------------------------------
  // The trace storage is resident — it survives TakeTrace and BeginRun so no
  // run pays for re-growing or re-initializing it — and both accessors copy
  // out the live prefix (trivially copyable, so the copy is one memcpy).
  std::vector<FaultInstanceEvent> trace() const {
    return std::vector<FaultInstanceEvent>(
        trace_.begin(), trace_.begin() + static_cast<std::ptrdiff_t>(trace_len_));
  }
  std::vector<FaultInstanceEvent> TakeTrace() {
    std::vector<FaultInstanceEvent> out(
        trace_.begin(), trace_.begin() + static_cast<std::ptrdiff_t>(trace_len_));
    trace_len_ = 0;
    return out;
  }
  // TakeTrace into a caller-owned buffer. Instead of copying, the resident
  // buffer and `out` trade places: `out` receives the filled buffer trimmed
  // to the live prefix (the trim is O(1) — the event type is trivially
  // destructible) and the runtime keeps `out`'s old storage as the next
  // run's resident buffer. With a recycled `out` the two buffers simply
  // rotate between runs and no element is ever copied.
  void CopyTraceTo(std::vector<FaultInstanceEvent>* out) {
    std::swap(*out, trace_);
    out->resize(trace_len_);
    trace_len_ = 0;
  }
  // The candidate that actually fired this run, if any.
  const std::optional<InjectionCandidate>& injected() const { return injected_; }
  // Number of times the hooks consulted the runtime (paper Table 4/8
  // "Inject. Req.").
  int64_t injection_requests() const { return injection_requests_; }
  // Per-site dynamic occurrence counts observed this run (sites with a
  // nonzero count only; counters live in a dense array internally).
  std::unordered_map<ir::FaultSiteId, int64_t> occurrence_counts() const;
  // The program this runtime was built for (lets per-worker caches key their
  // reuse on it).
  const ir::Program& program() const { return *program_; }
  // Cumulative time spent inside injection decisions, for Table 4 latency.
  int64_t decision_nanos() const { return decision_nanos_; }
  // Window candidates whose (site, occurrence) was claimed by a pinned fault
  // this run. The pinned fault fires (once — never a double injection); the
  // pre-empted window candidate is reported here so the search can retire it
  // instead of re-arming it forever.
  const std::vector<InjectionCandidate>& preempted_window() const { return preempted_window_; }
  // Pinned-fault firings this run (each pinned instance fires at most once).
  int64_t pinned_fired() const { return pinned_fired_; }

  // Folds this run's fault accounting ("fault.requests",
  // "fault.injected.<kind>", "fault.pinned_fired", "fault.preempted") into
  // the registry. Called by the simulator at the end of Run() when a metrics
  // sink is attached.
  void FlushMetrics(obs::MetricsRegistry* metrics) const;

 private:
  // Shared pinned/window matching: traces the instance, fills `action` and
  // returns true when a pinned or window candidate fired at (site,
  // occurrence). Natural transients are the caller's (OnExternalCall's)
  // business.
  bool Decide(ir::FaultSiteId site, int64_t log_clock, int64_t time_ms, int32_t thread_id,
              FaultAction* action);
  // The scan half of Decide: matches (site, occurrence) against pinned +
  // window candidates. Cold — only reached when the site's armed bit is set
  // (fast path) or on every legacy Decide call.
  bool MatchArmed(ir::FaultSiteId site, int64_t occurrence, FaultAction* action);
  // Armed-site halves of the fast hooks: candidate scan plus a kind sanity
  // check. Cold by construction — a clear armed bit skips them entirely.
  bool ExternalCallMatchArmed(ir::FaultSiteId site, int64_t occurrence, FaultAction* action);
  bool SendMatchArmed(ir::FaultSiteId site, int64_t occurrence, FaultAction* action);
  // Timed-stride variants: run the same impl between two clock reads and
  // extrapolate across the stride.
  FaultAction OnExternalCallFastTimed(ir::FaultSiteId site, ir::ExceptionTypeId transient_type,
                                      int32_t transient_every_n, int64_t log_clock,
                                      int64_t time_ms, int32_t thread_id);
  FaultAction OnSendFastTimed(ir::FaultSiteId site, int64_t log_clock, int64_t time_ms,
                              int32_t thread_id);

  // One in every kDecisionSample fast-hook requests is timed. Power of two
  // so the stride test is a mask.
  static constexpr int64_t kDecisionSample = 256;

  // Appends one trace event through a raw cursor into pre-sized storage: a
  // handful of plain stores on the hot path instead of an out-of-line
  // vector::emplace_back per request. The vector is kept at size >=
  // trace_len_ (spare tail entries are default-constructed filler); the
  // accessors copy out the live prefix.
  void TraceAppend(ir::FaultSiteId site, int64_t occurrence, int64_t log_clock,
                   int64_t time_ms, int32_t thread_id) {
    if (trace_len_ == trace_.size()) {
      GrowTrace();
    }
    FaultInstanceEvent& event = trace_[trace_len_++];
    event.site = site;
    event.occurrence = occurrence;
    event.log_clock = log_clock;
    event.time_ms = time_ms;
    event.thread_id = thread_id;
  }
  void GrowTrace();

  FaultAction ExternalCallFastImpl(ir::FaultSiteId site, ir::ExceptionTypeId transient_type,
                                   int32_t transient_every_n, int64_t log_clock,
                                   int64_t time_ms, int32_t thread_id) {
    ++injection_requests_;
    int64_t occurrence = BumpOccurrence(site);
    FaultAction action;
    action.occurrence = occurrence;
    if (tracing_) {
      TraceAppend(site, occurrence, log_clock, time_ms, thread_id);
    }
    if (Armed(site)) {
      if (ExternalCallMatchArmed(site, occurrence, &action)) {
        return action;
      }
    }
    // Natural transient failure (deterministic, present in fault-free runs
    // too): models handled errors that make production logs noisy.
    if (transient_every_n > 0 && occurrence % transient_every_n == 0) {
      action.exception = transient_type;
    }
    return action;
  }
  FaultAction SendFastImpl(ir::FaultSiteId site, int64_t log_clock, int64_t time_ms,
                           int32_t thread_id) {
    ++injection_requests_;
    int64_t occurrence = BumpOccurrence(site);
    FaultAction action;
    action.occurrence = occurrence;
    if (tracing_) {
      TraceAppend(site, occurrence, log_clock, time_ms, thread_id);
    }
    if (Armed(site)) {
      SendMatchArmed(site, occurrence, &action);
    }
    return action;
  }

  int64_t BumpOccurrence(ir::FaultSiteId site) {
    size_t index = static_cast<size_t>(site);
    if (index >= occurrences_.size()) {
      // Direct hook users (benchmarks, unit tests) may skip BeginRun; grow
      // lazily rather than requiring the sizing pass.
      occurrences_.resize(index + 1, 0);
    }
    return ++occurrences_[index];
  }
  bool Armed(ir::FaultSiteId site) const {
    size_t word = static_cast<size_t>(site) >> 6;
    return word < armed_.size() &&
           ((armed_[word] >> (static_cast<size_t>(site) & 63)) & 1) != 0;
  }

  const ir::Program* program_;
  std::vector<InjectionCandidate> window_;
  std::vector<InjectionCandidate> pinned_;
  bool tracing_ = true;

  // Dense per-site occurrence counters (index = FaultSiteId) and the per-run
  // armed-site bitmap: bit `site` is set iff some window or pinned candidate
  // names that site, so a clear bit proves no candidate scan is needed.
  std::vector<int64_t> occurrences_;
  std::vector<uint64_t> armed_;
  std::vector<FaultInstanceEvent> trace_;
  size_t trace_len_ = 0;
  std::optional<InjectionCandidate> injected_;
  std::vector<InjectionCandidate> preempted_window_;
  int64_t injection_requests_ = 0;
  int64_t decision_nanos_ = 0;
  int64_t pinned_fired_ = 0;
};

}  // namespace anduril::interp

#endif  // ANDURIL_SRC_INTERP_FAULT_RUNTIME_H_
