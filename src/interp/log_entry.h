// Log entries produced by simulated systems.
//
// These are the paper's "observables": the only runtime information the
// explorer may use as feedback is what a production log file would contain.
// Entries render to text lines (and are parsed back by src/logdiff) so the
// toolchain never takes shortcuts through in-memory structures that a real
// deployment would not have.

#ifndef ANDURIL_SRC_INTERP_LOG_ENTRY_H_
#define ANDURIL_SRC_INTERP_LOG_ENTRY_H_

#include <string>
#include <vector>

#include "src/ir/program.h"
#include "src/ir/types.h"

namespace anduril::interp {

struct LogEntry {
  int64_t time_ms = 0;     // simulated time
  int64_t log_clock = 0;   // index in the run's combined log stream
  std::string node;
  std::string thread;      // thread name without node prefix
  ir::LogLevel level = ir::LogLevel::kInfo;
  std::string logger;
  std::string message;     // fully rendered
  ir::LogTemplateId tmpl = ir::kInvalidId;   // kInvalidId for builtin messages
  ir::GlobalStmt source;                     // log stmt; invalid for builtins
  ir::MethodId uncaught_method = ir::kInvalidId;  // set for uncaught-exception entries

  // "node/thread" — globally unique thread label used for per-thread diffing.
  std::string FullThreadName() const { return node + "/" + thread; }
};

// Renders an entry as one production-style log line:
//   "10:00:01,234 [node/thread] LEVEL logger - message"
std::string FormatLogLine(const LogEntry& entry);

// Renders a whole run log as a log file body.
std::string FormatLogFile(const std::vector<LogEntry>& entries);

}  // namespace anduril::interp

#endif  // ANDURIL_SRC_INTERP_LOG_ENTRY_H_
