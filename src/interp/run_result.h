// Result of one simulated run: the production-log analog plus the
// explorer-side runtime information (fault instance trace, thread end
// states, final node state) that oracles and the feedback algorithm consume.

#ifndef ANDURIL_SRC_INTERP_RUN_RESULT_H_
#define ANDURIL_SRC_INTERP_RUN_RESULT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/interp/fault_runtime.h"
#include "src/interp/log_entry.h"
#include "src/interp/network_model.h"
#include "src/ir/program.h"

namespace anduril::interp {

enum class ThreadEndState : uint8_t {
  kFinished,  // idle, no queued tasks
  kBlocked,   // still waiting on a condition / future / sleep / stall fault
  kDied,      // killed by an uncaught exception
  kCrashed,   // halted by a node crash fault
};

// How a run ended, in decreasing severity: a crash fault halted a node, a
// stall fault left an external call wedged past the end of the run, an
// unhealed network partition starved a still-blocked thread of messages, a
// run budget (simulated-time, step, or host wall-clock) expired, or the run
// drained all events and completed cleanly. Threads blocked in ordinary
// awaits/sleeps at run end do not make a run kHung — only a stall fault
// does; likewise they only make it kPartitionedStuck when a partition fault
// fired, actually dropped messages, and never healed.
// (kPartitionedStuck sorts after kBudgetExceeded to keep the on-disk values
// of the original outcomes stable.)
enum class RunOutcome : uint8_t { kCompleted, kCrashed, kHung, kBudgetExceeded,
                                  kPartitionedStuck };

const char* RunOutcomeName(RunOutcome outcome);

// A partition sever/heal transition with node names resolved, for human
// output (PartitionEvent in network_model.h is the index-based raw form).
struct PartitionTransition {
  int64_t time_ms = 0;
  std::string node_a;
  std::string node_b;
  bool sever = true;  // false = heal
};

struct ThreadSummary {
  std::string node;
  std::string name;
  ThreadEndState state = ThreadEndState::kFinished;
  // For kBlocked: where the thread is parked.
  ir::GlobalStmt blocked_at;
  // Method on top of the stack when the run ended (kInvalidId if none).
  ir::MethodId current_method = ir::kInvalidId;
  // For kDied: the uncaught exception type.
  ir::ExceptionTypeId death_exception = ir::kInvalidId;
};

struct RunResult {
  std::vector<LogEntry> log;
  std::vector<FaultInstanceEvent> trace;
  std::vector<ThreadSummary> threads;
  // node name -> (VarId -> final value)
  std::unordered_map<std::string, std::unordered_map<ir::VarId, int64_t>> node_vars;
  int64_t end_time_ms = 0;
  bool hit_time_limit = false;
  bool hit_step_limit = false;
  // The watchdog killed the run because the host wall-clock budget expired.
  // Unlike the simulated-time and step limits this depends on the machine,
  // so the explorer treats it as transient and retries.
  bool hit_wall_budget = false;
  RunOutcome outcome = RunOutcome::kCompleted;
  // Nodes halted by a crash fault, in crash order.
  std::vector<std::string> crashed_nodes;
  // Message-layer accounting (drops, delays, duplicates, partitions).
  NetworkStats network;
  // Partition sever/heal transitions, chronological, node names resolved.
  std::vector<PartitionTransition> partition_events;
  int64_t injection_requests = 0;
  int64_t decision_nanos = 0;
  // Pinned-fault firings (iterative multi-fault mode; 0 in single-fault
  // searches). Mirrors FaultRuntime::pinned_fired for metrics consistency
  // checks.
  int64_t pinned_fired = 0;
  std::optional<InjectionCandidate> injected;
  // Window candidates pre-empted by a pinned fault at the same instance (see
  // FaultRuntime::preempted_window).
  std::vector<InjectionCandidate> preempted_window;

  // --- Oracle helpers --------------------------------------------------------
  bool HasLogContaining(const std::string& needle) const;
  bool HasLogContaining(ir::LogLevel level, const std::string& needle) const;
  int CountLogContaining(const std::string& needle) const;
  // True if a thread whose "node/thread" name contains `name_substr` ended
  // blocked; if `method` is non-empty, its innermost frame must be in that
  // method (requires `program`).
  bool IsThreadStuck(const std::string& name_substr) const;
  bool IsThreadStuckIn(const ir::Program& program, const std::string& name_substr,
                       const std::string& method) const;
  bool DidThreadDie(const std::string& name_substr) const;
  // True if a crash fault halted `node` during the run.
  bool DidNodeCrash(const std::string& node) const;
  // Final value of a node variable (0 if unset).
  int64_t NodeVar(const ir::Program& program, const std::string& node,
                  const std::string& var) const;
};

}  // namespace anduril::interp

#endif  // ANDURIL_SRC_INTERP_RUN_RESULT_H_
