#include "src/interp/log_entry.h"

#include "src/util/strings.h"

namespace anduril::interp {

std::string FormatLogLine(const LogEntry& entry) {
  // Simulated wall clock starts at 10:00:00.000.
  int64_t total_ms = entry.time_ms;
  int64_t ms = total_ms % 1000;
  int64_t secs = total_ms / 1000;
  int64_t hours = 10 + secs / 3600;
  int64_t mins = (secs / 60) % 60;
  secs %= 60;
  return StrFormat("%02lld:%02lld:%02lld,%03lld [%s] %s %s - %s",
                   static_cast<long long>(hours), static_cast<long long>(mins),
                   static_cast<long long>(secs), static_cast<long long>(ms),
                   entry.FullThreadName().c_str(), ir::LogLevelName(entry.level),
                   entry.logger.c_str(), entry.message.c_str());
}

std::string FormatLogFile(const std::vector<LogEntry>& entries) {
  std::string out;
  for (const LogEntry& entry : entries) {
    out += FormatLogLine(entry);
    out.push_back('\n');
  }
  return out;
}

}  // namespace anduril::interp
