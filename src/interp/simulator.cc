#include "src/interp/simulator.h"

#include <algorithm>
#include <charconv>
#include <functional>

#include "src/obs/metrics.h"
#include "src/util/check.h"
#include "src/util/strings.h"

namespace anduril::interp {

namespace {

int64_t WaiterKey(int32_t node, ir::VarId var) {
  return (static_cast<int64_t>(node) << 32) | static_cast<uint32_t>(var);
}

// Short thread name for a handler method: "wal.consume" -> "consume".
std::string DefaultHandlerThread(const std::string& method_name) {
  size_t pos = method_name.rfind('.');
  return pos == std::string::npos ? method_name : method_name.substr(pos + 1);
}

constexpr int64_t kWhileIterationCap = 1'000'000;

}  // namespace

// The pooled containers a RunScratch lends to its current Simulator. All are
// empty between runs but keep their heap allocations (vector capacity, hash
// buckets, recycled Thread objects).
struct RunScratch::Impl {
  std::vector<std::unique_ptr<Simulator::Thread>> thread_pool;
  std::vector<std::vector<int64_t>> env;
  std::vector<std::string> node_names;
  std::unordered_map<std::string, int32_t> node_index;
  std::vector<std::unique_ptr<Simulator::Thread>> threads;
  std::unordered_map<std::string, int32_t> thread_index;
  std::unordered_map<int64_t, std::vector<int32_t>> waiters;
  std::vector<Simulator::FutureState> futures;
  std::vector<Simulator::Event> events;
  std::vector<Simulator::EventRef> event_heap;
  std::vector<int32_t> free_event_slots;
  std::vector<int32_t> flat_threads;
  std::vector<int32_t> send_targets;
  // Sizing hints from previous runs on this worker: pre-reserving the log
  // avoids the growth reallocations that move every already-emitted entry
  // (four string moves each).
  size_t log_reserve = 0;
  // Buffers salvaged from consumed results via RunScratch::Recycle. The log
  // pool keeps its entries intact (not cleared) so the next run can
  // overwrite them in place, reusing each entry's string capacity.
  std::vector<LogEntry> log_pool;
  std::vector<FaultInstanceEvent> trace_pool;
};

void RunScratch::Recycle(RunResult&& result) {
  impl_->log_pool = std::move(result.log);
  // Deliberately not cleared: FaultRuntime::CopyTraceTo swaps this buffer in
  // as the next resident trace, and TraceAppend overwrites its elements in
  // place — keeping the size lets the append path skip growth entirely.
  impl_->trace_pool = std::move(result.trace);
}

RunScratch::RunScratch() : impl_(std::make_unique<Impl>()) {}
RunScratch::~RunScratch() = default;

Simulator::Simulator(const ir::Program* program, const ClusterSpec* spec, uint64_t seed,
                     FaultRuntime* fault_runtime, const ir::FlatProgram* flat,
                     RunScratch* scratch)
    : program_(program), spec_(spec), fault_runtime_(fault_runtime), flat_(flat),
      scratch_(scratch), rng_(seed), network_(seed) {
  ANDURIL_CHECK(program_->finalized()) << "program must be finalized before execution";
  if (flat_ != nullptr) {
    ANDURIL_CHECK(flat_->program() == program_)
        << "FlatProgram was built from a different Program";
  }
  if (scratch_ != nullptr) {
    BorrowScratch();
  }
  execution_exception_ = program_->FindException("ExecutionException");
  futures_.emplace_back();  // index 0 unused

  for (const std::string& node : spec_->nodes) {
    ANDURIL_CHECK(node_index_.find(node) == node_index_.end()) << "duplicate node " << node;
    int32_t index = static_cast<int32_t>(node_names_.size());
    node_index_[node] = index;
    node_names_.push_back(node);
    if (static_cast<size_t>(index) < env_.size()) {
      env_[static_cast<size_t>(index)].assign(program_->var_count(), 0);
    } else {
      env_.emplace_back(program_->var_count(), 0);
    }
  }
  env_.resize(node_names_.size());
  for (const InitialValue& init : spec_->initial_values) {
    EnvRef(NodeIndex(init.node), init.var) = init.value;
  }
}

Simulator::~Simulator() = default;

void Simulator::BorrowScratch() {
  RunScratch::Impl& pool = *scratch_->impl_;
  env_ = std::move(pool.env);
  node_names_ = std::move(pool.node_names);
  node_names_.clear();
  node_index_ = std::move(pool.node_index);
  node_index_.clear();
  threads_ = std::move(pool.threads);
  threads_.clear();
  thread_index_ = std::move(pool.thread_index);
  thread_index_.clear();
  waiters_ = std::move(pool.waiters);
  // Empty the per-key waiter lists but keep the map nodes and the vectors'
  // capacity: an entry with an empty list behaves exactly like an absent one
  // (WakeWaitersOf walks nothing), and re-blocking threads in the next run
  // appends into the retained storage instead of re-allocating it.
  for (auto& entry : waiters_) {
    entry.second.clear();
  }
  futures_ = std::move(pool.futures);
  futures_.clear();
  events_ = std::move(pool.events);
  events_.clear();
  event_heap_ = std::move(pool.event_heap);
  event_heap_.clear();
  free_event_slots_ = std::move(pool.free_event_slots);
  free_event_slots_.clear();
  flat_threads_ = std::move(pool.flat_threads);
  send_targets_ = std::move(pool.send_targets);
  // Recycled entries (if any) are reused in place via NextLogEntry;
  // log_len_ starts at 0 so they are overwritten before being re-exposed.
  log_ = std::move(pool.log_pool);
  log_.reserve(pool.log_reserve);
}

void Simulator::ReturnScratch() {
  RunScratch::Impl& pool = *scratch_->impl_;
  for (auto& thread : threads_) {
    pool.thread_pool.push_back(std::move(thread));
  }
  threads_.clear();
  pool.threads = std::move(threads_);
  pool.env = std::move(env_);
  pool.node_names = std::move(node_names_);
  pool.node_index = std::move(node_index_);
  pool.thread_index = std::move(thread_index_);
  pool.waiters = std::move(waiters_);
  pool.futures = std::move(futures_);
  pool.events = std::move(events_);
  pool.event_heap = std::move(event_heap_);
  pool.free_event_slots = std::move(free_event_slots_);
  pool.flat_threads = std::move(flat_threads_);
  pool.send_targets = std::move(send_targets_);
}

void Simulator::ResetThread(Thread* thread) {
  thread->id = -1;
  thread->node = -1;
  thread->name.clear();
  thread->queue.clear();
  thread->stack.clear();
  thread->fstack.clear();
  thread->loop_iters.clear();
  thread->caughts.clear();
  thread->current_future = -1;
  thread->state = Thread::State::kIdle;
  thread->crashed = false;
  thread->block_kind = Thread::BlockKind::kNone;
  thread->blocked_at = ir::GlobalStmt{};
  thread->epoch = 0;
  thread->wait_vars.clear();
  thread->wait_future = -1;
  thread->death_exception = ir::kInvalidId;
}

int32_t Simulator::NodeIndex(const std::string& name) const {
  auto it = node_index_.find(name);
  ANDURIL_CHECK(it != node_index_.end()) << "unknown node " << name;
  return it->second;
}

Simulator::Thread* Simulator::GetThread(int32_t node, const std::string& name) {
  std::string key = std::to_string(node);
  key += '/';
  key += name;
  auto it = thread_index_.find(key);
  if (it != thread_index_.end()) {
    return threads_[static_cast<size_t>(it->second)].get();
  }
  std::unique_ptr<Thread> thread;
  if (scratch_ != nullptr && !scratch_->impl_->thread_pool.empty()) {
    thread = std::move(scratch_->impl_->thread_pool.back());
    scratch_->impl_->thread_pool.pop_back();
    ResetThread(thread.get());
  } else {
    thread = std::make_unique<Thread>();
  }
  thread->id = static_cast<int32_t>(threads_.size());
  thread->node = node;
  thread->name = name;
  for (int32_t crashed : crashed_node_indices_) {
    if (crashed == node) {
      // A handler spawned on an already-crashed node (e.g. by a message sent
      // from a live node) is born dead; deliveries to it are dropped.
      thread->state = Thread::State::kDead;
      thread->crashed = true;
      break;
    }
  }
  thread_index_[key] = thread->id;
  threads_.push_back(std::move(thread));
  return threads_.back().get();
}

int64_t& Simulator::EnvRef(int32_t node, ir::VarId var) {
  ANDURIL_CHECK_GE(var, 0);
  ANDURIL_CHECK_LT(static_cast<size_t>(var), env_[static_cast<size_t>(node)].size());
  return env_[static_cast<size_t>(node)][static_cast<size_t>(var)];
}

int64_t Simulator::EvalExpr(const Thread& thread, const Frame& frame, const ir::Expr& expr) {
  switch (expr.kind) {
    case ir::ExprKind::kConst:
      return expr.constant;
    case ir::ExprKind::kVar:
      return env_[static_cast<size_t>(thread.node)][static_cast<size_t>(expr.var)];
    case ir::ExprKind::kPayload:
      return frame.payload;
    case ir::ExprKind::kAdd:
      return env_[static_cast<size_t>(thread.node)][static_cast<size_t>(expr.var)] +
             expr.constant;
    case ir::ExprKind::kSub:
      return env_[static_cast<size_t>(thread.node)][static_cast<size_t>(expr.var)] -
             expr.constant;
    case ir::ExprKind::kAddVar:
      return env_[static_cast<size_t>(thread.node)][static_cast<size_t>(expr.var)] +
             env_[static_cast<size_t>(thread.node)][static_cast<size_t>(expr.var2)];
  }
  ANDURIL_UNREACHABLE();
}

bool Simulator::EvalCond(const Thread& thread, const ir::Cond& cond) {
  if (cond.IsTrue()) {
    return true;
  }
  int64_t lhs = env_[static_cast<size_t>(thread.node)][static_cast<size_t>(cond.lhs)];
  int64_t rhs = cond.rhs_is_var
                    ? env_[static_cast<size_t>(thread.node)][static_cast<size_t>(cond.rhs_var)]
                    : cond.rhs_const;
  return cond.Evaluate(lhs, rhs);
}

void Simulator::PushEvent(Event event) {
  event.seq = ++event_seq_;
  EventRef ref{event.time, static_cast<uint32_t>(event.seq), 0};
  if (!free_event_slots_.empty()) {
    ref.slot = static_cast<uint32_t>(free_event_slots_.back());
    free_event_slots_.pop_back();
    events_[ref.slot] = std::move(event);
  } else {
    ref.slot = static_cast<uint32_t>(events_.size());
    events_.push_back(std::move(event));
  }
  // Hand-rolled sift-up: the heap is small and hot, and the open-coded loop
  // (plain loads and 16-byte stores) beats the iterator-generic
  // std::push_heap instantiation.
  event_heap_.push_back(ref);
  EventRef* heap = event_heap_.data();
  size_t index = event_heap_.size() - 1;
  while (index > 0) {
    size_t parent = (index - 1) / 2;
    if (!(heap[parent] > ref)) {
      break;
    }
    heap[index] = heap[parent];
    index = parent;
  }
  heap[index] = ref;
}

Simulator::Event Simulator::PopEvent() {
  EventRef* heap = event_heap_.data();
  uint32_t slot = heap[0].slot;
  free_event_slots_.push_back(static_cast<int32_t>(slot));
  // Hand-rolled sift-down of the last ref into the root hole.
  EventRef last = event_heap_.back();
  event_heap_.pop_back();
  size_t size = event_heap_.size();
  if (size > 0) {
    size_t index = 0;
    for (;;) {
      size_t child = 2 * index + 1;
      if (child >= size) {
        break;
      }
      if (child + 1 < size && heap[child] > heap[child + 1]) {
        ++child;
      }
      if (!(last > heap[child])) {
        break;
      }
      heap[index] = heap[child];
      index = child;
    }
    heap[index] = last;
  }
  return std::move(events_[slot]);
}

const Simulator::ExcValue* Simulator::CurrentCaught(const Thread& thread) const {
  if (thread.stack.empty()) {
    return nullptr;
  }
  const Frame& frame = thread.stack.back();
  for (auto it = frame.cursors.rbegin(); it != frame.cursors.rend(); ++it) {
    if (it->ctx == Cursor::Ctx::kCatchBody && it->caught.valid()) {
      return &it->caught;
    }
  }
  return nullptr;
}

std::string Simulator::DescribeException(const ExcValue& exc) const {
  const ExcValue& root = exc.Root();
  std::string origin;
  if (root.origin_site != ir::kInvalidId) {
    origin = program_->fault_site(root.origin_site).name;
  } else if (root.origin.method != ir::kInvalidId) {
    origin = StrFormat("%s#%d", program_->method(root.origin.method).name.c_str(),
                       root.origin.stmt);
  } else {
    origin = "unknown";
  }
  std::string text = StrFormat("%s at %s", program_->exception_type(exc.type).name.c_str(),
                               origin.c_str());
  if (exc.cause != nullptr) {
    text += StrFormat("; caused by %s",
                      program_->exception_type(exc.cause->type).name.c_str());
  }
  return text;
}

void Simulator::AppendExceptionDescription(std::string* out, const ExcValue& exc) const {
  const ExcValue& root = exc.Root();
  *out += program_->exception_type(exc.type).name;
  *out += " at ";
  if (root.origin_site != ir::kInvalidId) {
    *out += program_->fault_site(root.origin_site).name;
  } else if (root.origin.method != ir::kInvalidId) {
    *out += program_->method(root.origin.method).name;
    *out += '#';
    char digits[16];
    auto [end, ec] = std::to_chars(digits, digits + sizeof(digits), root.origin.stmt);
    out->append(digits, static_cast<size_t>(end - digits));
  } else {
    *out += "unknown";
  }
  if (exc.cause != nullptr) {
    *out += "; caused by ";
    *out += program_->exception_type(exc.cause->type).name;
  }
}

void Simulator::EmitLog(Thread* thread, const ir::Stmt& stmt, ir::MethodId method_id,
                        ir::StmtId stmt_id) {
  const ir::LogTemplate& tmpl = program_->log_template(stmt.log_template);
  std::string message;
  message.reserve(tmpl.text.size() + 16);
  size_t arg_index = 0;
  const Frame& frame = thread->stack.back();
  for (size_t i = 0; i < tmpl.text.size();) {
    if (i + 1 < tmpl.text.size() && tmpl.text[i] == '{' && tmpl.text[i + 1] == '}') {
      int64_t value =
          arg_index < stmt.log_args.size() ? EvalExpr(*thread, frame, stmt.log_args[arg_index])
                                           : 0;
      ++arg_index;
      message += std::to_string(value);
      i += 2;
    } else {
      message.push_back(tmpl.text[i]);
      ++i;
    }
  }
  if (stmt.log_attach_exception) {
    const ExcValue* caught = CurrentCaught(*thread);
    if (caught != nullptr) {
      message += StrFormat(" [exc=%s]", DescribeException(*caught).c_str());
    }
  }
  LogEntry entry;
  entry.time_ms = now_;
  entry.log_clock = static_cast<int64_t>(log_len_);
  entry.node = node_names_[static_cast<size_t>(thread->node)];
  entry.thread = thread->name;
  entry.level = tmpl.level;
  entry.logger = tmpl.logger;
  entry.message = std::move(message);
  entry.tmpl = stmt.log_template;
  entry.source = ir::GlobalStmt{method_id, stmt_id};
  NextLogEntry() = std::move(entry);
}

void Simulator::EmitBuiltinLog(Thread* thread, ir::LogLevel level, const std::string& logger,
                               const std::string& message, ir::MethodId uncaught_method) {
  LogEntry entry;
  entry.time_ms = now_;
  entry.log_clock = static_cast<int64_t>(log_len_);
  entry.node = node_names_[static_cast<size_t>(thread->node)];
  entry.thread = thread->name;
  entry.level = level;
  entry.logger = logger;
  entry.message = message;
  entry.uncaught_method = uncaught_method;
  NextLogEntry() = std::move(entry);
}

void Simulator::BlockThread(Thread* thread, Thread::BlockKind kind, ir::GlobalStmt at) {
  thread->state = Thread::State::kBlocked;
  thread->block_kind = kind;
  thread->blocked_at = at;
  ++thread->epoch;
}

void Simulator::UnblockThread(Thread* thread) {
  // Deregister condition waits.
  for (ir::VarId var : thread->wait_vars) {
    auto it = waiters_.find(WaiterKey(thread->node, var));
    if (it != waiters_.end()) {
      auto& list = it->second;
      list.erase(std::remove(list.begin(), list.end(), thread->id), list.end());
    }
  }
  thread->wait_vars.clear();
  thread->wait_future = -1;
  thread->block_kind = Thread::BlockKind::kNone;
  thread->state = Thread::State::kIdle;  // transiently; RunThread resumes it
  ++thread->epoch;                       // invalidate pending timers/wakes
}

void Simulator::WakeWaitersOf(int32_t node, ir::VarId var) {
  auto it = waiters_.find(WaiterKey(node, var));
  if (it == waiters_.end()) {
    return;
  }
  for (int32_t thread_id : it->second) {
    const Thread& thread = *threads_[static_cast<size_t>(thread_id)];
    Event event;
    event.time = now_;
    event.kind = Event::Kind::kWake;
    event.thread = thread_id;
    event.epoch = thread.epoch;
    PushEvent(event);
  }
}

void Simulator::CompleteFuture(int64_t future_id, ExcValue exc) {
  ANDURIL_CHECK_GT(future_id, 0);
  ANDURIL_CHECK_LT(static_cast<size_t>(future_id), futures_.size());
  FutureState& future = futures_[static_cast<size_t>(future_id)];
  ANDURIL_CHECK(!future.done) << "future completed twice";
  future.done = true;
  future.exception = std::move(exc);
  for (int32_t thread_id : future.waiters) {
    const Thread& thread = *threads_[static_cast<size_t>(thread_id)];
    Event event;
    event.time = now_;
    event.kind = Event::Kind::kWake;
    event.thread = thread_id;
    event.epoch = thread.epoch;
    PushEvent(event);
  }
  future.waiters.clear();
}

Simulator::RaiseResult Simulator::Raise(Thread* thread, ExcValue exc) {
  while (!thread->stack.empty()) {
    Frame& frame = thread->stack.back();
    const ir::Method& method = program_->method(frame.method);
    while (!frame.cursors.empty()) {
      Cursor& cursor = frame.cursors.back();
      if (cursor.ctx == Cursor::Ctx::kTryBody) {
        const ir::Stmt& try_stmt = method.stmt(cursor.ctx_stmt);
        for (const ir::CatchClause& clause : try_stmt.catches) {
          if (program_->ExceptionIsA(exc.type, clause.type)) {
            cursor.block = clause.block;
            cursor.next_child = 0;
            cursor.ctx = Cursor::Ctx::kCatchBody;
            cursor.caught = std::move(exc);
            return RaiseResult::kHandled;
          }
        }
      }
      frame.cursors.pop_back();
    }
    thread->stack.pop_back();
  }
  // Escaped the task root.
  if (thread->current_future > 0) {
    CompleteFuture(thread->current_future, std::move(exc));
    thread->current_future = -1;
    return RaiseResult::kTaskFailed;
  }
  HandleUncaught(thread, exc);
  return RaiseResult::kThreadDied;
}

void Simulator::HandleUncaught(Thread* thread, const ExcValue& exc) {
  ir::MethodId method = exc.origin.method;
  std::string message = "Uncaught exception terminating thread: ";
  message += program_->exception_type(exc.type).name;
  message += " [exc=";
  AppendExceptionDescription(&message, exc);
  message += ']';
  EmitBuiltinLog(thread, ir::LogLevel::kError, "thread", message, method);
  thread->state = Thread::State::kDead;
  thread->death_exception = exc.type;
  thread->queue.clear();
  thread->stack.clear();
  thread->fstack.clear();
  thread->loop_iters.clear();
  thread->caughts.clear();
}

Simulator::StepResult Simulator::Step(Thread* thread) {
  Frame& frame = thread->stack.back();
  if (frame.cursors.empty()) {
    thread->stack.pop_back();
    return thread->stack.empty() ? StepResult::kTaskDone : StepResult::kContinue;
  }
  Cursor& cursor = frame.cursors.back();
  const ir::Method& method = program_->method(frame.method);
  const ir::Stmt& block = method.stmt(cursor.block);
  if (static_cast<size_t>(cursor.next_child) >= block.children.size()) {
    if (cursor.ctx == Cursor::Ctx::kWhileBody) {
      const ir::Stmt& while_stmt = method.stmt(cursor.ctx_stmt);
      if (EvalCond(*thread, while_stmt.cond)) {
        ANDURIL_CHECK_LT(cursor.loop_iter, kWhileIterationCap)
            << "runaway loop in " << method.name;
        ++cursor.loop_iter;
        cursor.next_child = 0;
        return StepResult::kContinue;
      }
    }
    frame.cursors.pop_back();
    if (frame.cursors.empty()) {
      thread->stack.pop_back();
      return thread->stack.empty() ? StepResult::kTaskDone : StepResult::kContinue;
    }
    return StepResult::kContinue;
  }
  ir::StmtId stmt_id = block.children[static_cast<size_t>(cursor.next_child)];
  ++cursor.next_child;
  // NOTE: `cursor`, `frame` may be invalidated by ExecStmt (cursor/frame
  // pushes); do not touch them after this call.
  return ExecStmt(thread, frame.method, stmt_id);
}

Simulator::StepResult Simulator::ExecStmt(Thread* thread, ir::MethodId method_id,
                                          ir::StmtId stmt_id) {
  const ir::Method& method = program_->method(method_id);
  const ir::Stmt& stmt = method.stmt(stmt_id);
  Frame& frame = thread->stack.back();

  switch (stmt.kind) {
    case ir::StmtKind::kNop:
      return StepResult::kContinue;

    case ir::StmtKind::kBlock: {
      Cursor cursor;
      cursor.block = stmt_id;
      thread->stack.back().cursors.push_back(cursor);
      return StepResult::kContinue;
    }

    case ir::StmtKind::kAssign:
      EnvRef(thread->node, stmt.assign_var) = EvalExpr(*thread, frame, stmt.expr);
      return StepResult::kContinue;

    case ir::StmtKind::kLog:
      EmitLog(thread, stmt, method_id, stmt_id);
      return StepResult::kContinue;

    case ir::StmtKind::kIf: {
      ir::StmtId chosen =
          EvalCond(*thread, stmt.cond) ? stmt.then_block : stmt.else_block;
      if (chosen != ir::kInvalidId) {
        Cursor cursor;
        cursor.block = chosen;
        thread->stack.back().cursors.push_back(cursor);
      }
      return StepResult::kContinue;
    }

    case ir::StmtKind::kWhile: {
      if (EvalCond(*thread, stmt.cond)) {
        Cursor cursor;
        cursor.block = stmt.then_block;
        cursor.ctx = Cursor::Ctx::kWhileBody;
        cursor.ctx_stmt = stmt_id;
        cursor.loop_iter = 1;
        thread->stack.back().cursors.push_back(cursor);
      }
      return StepResult::kContinue;
    }

    case ir::StmtKind::kInvoke: {
      Frame callee;
      callee.method = stmt.callee;
      callee.payload = frame.payload;
      Cursor cursor;
      cursor.block = 0;
      callee.cursors.push_back(cursor);
      thread->stack.push_back(std::move(callee));
      return StepResult::kContinue;
    }

    case ir::StmtKind::kTryCatch: {
      Cursor cursor;
      cursor.block = stmt.try_block;
      cursor.ctx = Cursor::Ctx::kTryBody;
      cursor.ctx_stmt = stmt_id;
      thread->stack.back().cursors.push_back(cursor);
      return StepResult::kContinue;
    }

    case ir::StmtKind::kThrow: {
      ExcValue exc;
      if (stmt.exception_type == ir::kInvalidId) {
        const ExcValue* caught = CurrentCaught(*thread);
        ANDURIL_CHECK(caught != nullptr) << "rethrow with no in-flight exception";
        exc = *caught;
      } else {
        exc.type = stmt.exception_type;
        exc.origin = ir::GlobalStmt{method_id, stmt_id};
        exc.origin_site = program_->FaultSiteAt(exc.origin);
      }
      switch (Raise(thread, std::move(exc))) {
        case RaiseResult::kHandled:
          return StepResult::kContinue;
        case RaiseResult::kTaskFailed:
          return StepResult::kTaskFailed;
        case RaiseResult::kThreadDied:
          return StepResult::kDied;
      }
      ANDURIL_UNREACHABLE();
    }

    case ir::StmtKind::kExternalCall: {
      ir::FaultSiteId site = program_->FaultSiteAt(ir::GlobalStmt{method_id, stmt_id});
      ANDURIL_CHECK_NE(site, ir::kInvalidId);
      FaultAction action = fault_runtime_->OnExternalCall(
          site, stmt, static_cast<int64_t>(log_len_), now_, thread->id);
      if (action.fired && action.kind == FaultKind::kCrash) {
        // The node halts at this call. No log line, no exception: the
        // per-thread log is simply truncated here, like a killed process.
        CrashNode(thread->node);
        return StepResult::kDied;
      }
      if (action.fired && action.kind == FaultKind::kStall) {
        // The call never returns. No wake event is scheduled, so the thread
        // stays wedged until the run's budget expires.
        BlockThread(thread, Thread::BlockKind::kStall, ir::GlobalStmt{method_id, stmt_id});
        stall_fired_ = true;
        return StepResult::kBlocked;
      }
      if (action.exception == ir::kInvalidId) {
        return StepResult::kContinue;
      }
      ExcValue exc;
      exc.type = action.exception;
      exc.origin = ir::GlobalStmt{method_id, stmt_id};
      exc.origin_site = site;
      exc.injected = action.injected;
      switch (Raise(thread, std::move(exc))) {
        case RaiseResult::kHandled:
          return StepResult::kContinue;
        case RaiseResult::kTaskFailed:
          return StepResult::kTaskFailed;
        case RaiseResult::kThreadDied:
          return StepResult::kDied;
      }
      ANDURIL_UNREACHABLE();
    }

    case ir::StmtKind::kAwait: {
      if (EvalCond(*thread, stmt.cond)) {
        return StepResult::kContinue;
      }
      BlockThread(thread, Thread::BlockKind::kAwait, ir::GlobalStmt{method_id, stmt_id});
      stmt.cond.CollectReads(&thread->wait_vars);
      for (ir::VarId var : thread->wait_vars) {
        waiters_[WaiterKey(thread->node, var)].push_back(thread->id);
      }
      if (stmt.timeout_ms >= 0) {
        Event event;
        event.time = now_ + stmt.timeout_ms;
        event.kind = Event::Kind::kTimer;
        event.thread = thread->id;
        event.epoch = thread->epoch;
        PushEvent(event);
      }
      return StepResult::kBlocked;
    }

    case ir::StmtKind::kSignal:
      WakeWaitersOf(thread->node, stmt.assign_var);
      return StepResult::kContinue;

    case ir::StmtKind::kSend: {
      ir::FaultSiteId site = program_->FaultSiteAt(ir::GlobalStmt{method_id, stmt_id});
      ANDURIL_CHECK_NE(site, ir::kInvalidId);
      FaultAction action = fault_runtime_->OnSend(site, static_cast<int64_t>(log_len_),
                                                  now_, thread->id);
      std::string target = stmt.target_node;
      if (stmt.target_index_var != ir::kInvalidId) {
        target += std::to_string(EnvRef(thread->node, stmt.target_index_var));
      }
      int32_t target_node = NodeIndex(target);
      std::string handler = stmt.handler_thread.empty()
                                ? DefaultHandlerThread(program_->method(stmt.callee).name)
                                : stmt.handler_thread;
      Thread* target_thread = GetThread(target_node, handler);
      network_.OnMessageSent();
      Event event;
      // The jitter draw stays unconditional so a fired network fault never
      // shifts the rng stream of the rest of the run.
      event.time = now_ + stmt.latency_ms + static_cast<int64_t>(rng_.NextBelow(2));
      event.kind = Event::Kind::kDeliver;
      event.thread = target_thread->id;
      event.src_node = thread->node;
      event.task = Task{stmt.callee, EvalExpr(*thread, frame, stmt.expr), -1};
      bool duplicate = false;
      if (action.fired) {
        switch (action.kind) {
          case FaultKind::kDrop:
            network_.DropMessage();
            return StepResult::kContinue;  // the message vanishes silently
          case FaultKind::kDelay:
            event.time += network_.DelayFor(site, action.occurrence, spec_->network_delay_ms);
            break;
          case FaultKind::kDuplicate:
            network_.DuplicateMessage();
            duplicate = true;
            break;
          case FaultKind::kPartition:
            // Severs the pair; the triggering message is then swallowed by
            // the severed-pair check below, like everything after it.
            network_.Sever(thread->node, target_node, now_, spec_->partition_heal_ms);
            break;
          default:
            ANDURIL_UNREACHABLE();  // OnSend only fires network kinds
        }
      }
      if (network_.SeveredDrop(thread->node, target_node, now_)) {
        return StepResult::kContinue;
      }
      PushEvent(event);
      if (duplicate) {
        PushEvent(event);  // same delivery time, later seq
      }
      return StepResult::kContinue;
    }

    case ir::StmtKind::kSubmit: {
      futures_.emplace_back();
      int64_t future_id = static_cast<int64_t>(futures_.size()) - 1;
      EnvRef(thread->node, stmt.future_var) = future_id;
      Thread* executor = GetThread(thread->node, stmt.executor_thread);
      Event event;
      event.time = now_;
      event.kind = Event::Kind::kDeliver;
      event.thread = executor->id;
      event.task = Task{stmt.callee, EvalExpr(*thread, frame, stmt.expr), future_id};
      PushEvent(event);
      return StepResult::kContinue;
    }

    case ir::StmtKind::kFutureGet: {
      int64_t future_id = EnvRef(thread->node, stmt.future_var);
      ANDURIL_CHECK_GT(future_id, 0) << "FutureGet before Submit in " << method.name;
      ANDURIL_CHECK_LT(static_cast<size_t>(future_id), futures_.size());
      FutureState& future = futures_[static_cast<size_t>(future_id)];
      if (future.done) {
        if (!future.exception.valid()) {
          return StepResult::kContinue;
        }
        ANDURIL_CHECK_NE(execution_exception_, ir::kInvalidId)
            << "program uses futures but does not define ExecutionException";
        ExcValue exc;
        exc.type = execution_exception_;
        exc.origin = ir::GlobalStmt{method_id, stmt_id};
        exc.cause = std::make_shared<ExcValue>(future.exception);
        exc.injected = future.exception.injected;
        switch (Raise(thread, std::move(exc))) {
          case RaiseResult::kHandled:
            return StepResult::kContinue;
          case RaiseResult::kTaskFailed:
            return StepResult::kTaskFailed;
          case RaiseResult::kThreadDied:
            return StepResult::kDied;
        }
        ANDURIL_UNREACHABLE();
      }
      BlockThread(thread, Thread::BlockKind::kFuture, ir::GlobalStmt{method_id, stmt_id});
      thread->wait_future = future_id;
      future.waiters.push_back(thread->id);
      if (stmt.timeout_ms >= 0) {
        Event event;
        event.time = now_ + stmt.timeout_ms;
        event.kind = Event::Kind::kTimer;
        event.thread = thread->id;
        event.epoch = thread->epoch;
        PushEvent(event);
      }
      return StepResult::kBlocked;
    }

    case ir::StmtKind::kSleep: {
      BlockThread(thread, Thread::BlockKind::kSleep, ir::GlobalStmt{method_id, stmt_id});
      Event event;
      event.time = now_ + stmt.sleep_ms;
      event.kind = Event::Kind::kTimer;
      event.thread = thread->id;
      event.epoch = thread->epoch;
      PushEvent(event);
      return StepResult::kBlocked;
    }

    case ir::StmtKind::kReturn: {
      thread->stack.pop_back();
      return thread->stack.empty() ? StepResult::kTaskDone : StepResult::kContinue;
    }

    case ir::StmtKind::kBreak: {
      Frame& top = thread->stack.back();
      while (!top.cursors.empty()) {
        bool was_loop = top.cursors.back().ctx == Cursor::Ctx::kWhileBody;
        top.cursors.pop_back();
        if (was_loop) {
          return StepResult::kContinue;
        }
      }
      ANDURIL_UNREACHABLE() << "break outside loop escaped the verifier";
    }
  }
  ANDURIL_UNREACHABLE();
}

void Simulator::RunThread(Thread* thread) {
  for (;;) {
    if (thread->state == Thread::State::kDead) {
      return;
    }
    if (thread->stack.empty()) {
      if (thread->queue.empty()) {
        thread->state = Thread::State::kIdle;
        return;
      }
      Task task = thread->queue.front();
      thread->queue.pop_front();
      thread->current_future = task.future;
      Frame frame;
      frame.method = task.method;
      frame.payload = task.payload;
      Cursor cursor;
      cursor.block = 0;
      frame.cursors.push_back(cursor);
      thread->stack.push_back(std::move(frame));
    }
    if (++steps_ > spec_->step_limit) {
      hit_step_limit_ = true;
      return;
    }
    if ((steps_ & 2047) == 0 && WallBudgetExceeded()) {
      return;
    }
    switch (Step(thread)) {
      case StepResult::kContinue:
        break;
      case StepResult::kBlocked:
        return;
      case StepResult::kDied:
        return;
      case StepResult::kTaskDone:
        if (thread->current_future > 0) {
          CompleteFuture(thread->current_future, ExcValue{});
          thread->current_future = -1;
        }
        break;
      case StepResult::kTaskFailed:
        // Raise already completed the future exceptionally.
        break;
    }
  }
}

void Simulator::ProcessWake(const Event& event) {
  Thread* thread = threads_[static_cast<size_t>(event.thread)].get();
  if (thread->state != Thread::State::kBlocked || event.epoch != thread->epoch) {
    return;  // stale wake
  }
  const ir::Method& method = program_->method(thread->blocked_at.method);
  const ir::Stmt& stmt = method.stmt(thread->blocked_at.stmt);
  ir::GlobalStmt at = thread->blocked_at;

  auto raise_here = [&](ExcValue exc) {
    UnblockThread(thread);
    Raise(thread, std::move(exc));
    RunThread(thread);
  };

  switch (thread->block_kind) {
    case Thread::BlockKind::kAwait: {
      if (event.kind == Event::Kind::kTimer) {
        // Timeout elapsed; condition still unsatisfied (a satisfied one
        // would have unblocked us via a signal wake).
        if (EvalCond(*thread, stmt.cond)) {
          UnblockThread(thread);
          RunThread(thread);
          return;
        }
        if (stmt.exception_type != ir::kInvalidId) {
          ExcValue exc;
          exc.type = stmt.exception_type;
          exc.origin = at;
          exc.origin_site = program_->FaultSiteAt(at);
          raise_here(std::move(exc));
          return;
        }
        UnblockThread(thread);
        RunThread(thread);
        return;
      }
      // Signal wake: re-check the condition.
      if (EvalCond(*thread, stmt.cond)) {
        UnblockThread(thread);
        RunThread(thread);
      }
      // else: spurious wake; stay blocked (epoch unchanged, timer intact).
      return;
    }

    case Thread::BlockKind::kFuture: {
      if (event.kind == Event::Kind::kTimer) {
        if (stmt.exception_type != ir::kInvalidId) {
          ExcValue exc;
          exc.type = stmt.exception_type;
          exc.origin = at;
          exc.origin_site = program_->FaultSiteAt(at);
          raise_here(std::move(exc));
          return;
        }
        UnblockThread(thread);
        RunThread(thread);
        return;
      }
      FutureState& future = futures_[static_cast<size_t>(thread->wait_future)];
      ANDURIL_CHECK(future.done);
      if (future.exception.valid()) {
        ANDURIL_CHECK_NE(execution_exception_, ir::kInvalidId);
        ExcValue exc;
        exc.type = execution_exception_;
        exc.origin = at;
        exc.cause = std::make_shared<ExcValue>(future.exception);
        exc.injected = future.exception.injected;
        raise_here(std::move(exc));
        return;
      }
      UnblockThread(thread);
      RunThread(thread);
      return;
    }

    case Thread::BlockKind::kSleep:
      UnblockThread(thread);
      RunThread(thread);
      return;

    case Thread::BlockKind::kStall:
      return;  // a stalled call never wakes

    case Thread::BlockKind::kNone:
      ANDURIL_UNREACHABLE();
  }
}

// --- Flattened execution ----------------------------------------------------

int64_t Simulator::EvalExprAt(int32_t node, int64_t payload, const ir::Expr& expr) const {
  const std::vector<int64_t>& env = env_[static_cast<size_t>(node)];
  switch (expr.kind) {
    case ir::ExprKind::kConst:
      return expr.constant;
    case ir::ExprKind::kVar:
      return env[static_cast<size_t>(expr.var)];
    case ir::ExprKind::kPayload:
      return payload;
    case ir::ExprKind::kAdd:
      return env[static_cast<size_t>(expr.var)] + expr.constant;
    case ir::ExprKind::kSub:
      return env[static_cast<size_t>(expr.var)] - expr.constant;
    case ir::ExprKind::kAddVar:
      return env[static_cast<size_t>(expr.var)] + env[static_cast<size_t>(expr.var2)];
  }
  ANDURIL_UNREACHABLE();
}

bool Simulator::EvalCondAt(int32_t node, const ir::Cond& cond) const {
  if (cond.IsTrue()) {
    return true;
  }
  const std::vector<int64_t>& env = env_[static_cast<size_t>(node)];
  int64_t lhs = env[static_cast<size_t>(cond.lhs)];
  int64_t rhs = cond.rhs_is_var ? env[static_cast<size_t>(cond.rhs_var)] : cond.rhs_const;
  return cond.Evaluate(lhs, rhs);
}

void Simulator::PushFlatFrame(Thread* thread, ir::MethodId method, int64_t payload) {
  const ir::FlatMethod& flat_method = flat_->flat_method(method);
  FlatFrame frame;
  frame.pc = flat_method.entry;
  frame.method = method;
  frame.payload = payload;
  frame.loop_base = static_cast<int32_t>(thread->loop_iters.size());
  frame.caught_base = static_cast<int32_t>(thread->caughts.size());
  thread->loop_iters.resize(thread->loop_iters.size() +
                            static_cast<size_t>(flat_method.loop_slots));
  thread->caughts.resize(thread->caughts.size() +
                         static_cast<size_t>(flat_method.caught_slots));
  thread->fstack.push_back(frame);
}

void Simulator::PopFlatFrame(Thread* thread) {
  const FlatFrame& frame = thread->fstack.back();
  thread->loop_iters.resize(static_cast<size_t>(frame.loop_base));
  thread->caughts.resize(static_cast<size_t>(frame.caught_base));
  thread->fstack.pop_back();
}

Simulator::Thread* Simulator::FlatThread(int32_t node, int32_t name_id) {
  int32_t& slot = flat_threads_[static_cast<size_t>(node) * flat_->thread_name_count() +
                                static_cast<size_t>(name_id)];
  if (slot < 0) {
    slot = GetThread(node, flat_->thread_name(name_id))->id;
  }
  return threads_[static_cast<size_t>(slot)].get();
}

void Simulator::EmitLogFlat(Thread* thread, const FlatFrame& frame, const ir::FlatOp& op) {
  const ir::FlatLog& info = flat_->log(op.aux);
  // Every field is (re)assigned: the entry may be a recycled shell from a
  // previous run, and the string assignments reuse its heap buffers.
  LogEntry& entry = NextLogEntry();
  entry.time_ms = now_;
  entry.log_clock = static_cast<int64_t>(log_len_) - 1;
  entry.node = node_names_[static_cast<size_t>(thread->node)];
  entry.thread = thread->name;
  entry.level = info.level;
  entry.logger = info.logger;
  entry.tmpl = info.tmpl;
  entry.source = op.source;
  entry.uncaught_method = ir::kInvalidId;
  size_t placeholders = info.segments.size() - 1;
  if (placeholders == 0 && !info.attach_exception) {
    // Constant template: one string copy, no assembly.
    entry.message = info.segments[0];
    return;
  }
  std::string& message = entry.message;
  message.clear();
  message.reserve(info.text_size + 16);
  message += info.segments[0];
  for (size_t k = 0; k < placeholders; ++k) {
    int64_t value =
        k < info.args.size() ? EvalExprAt(thread->node, frame.payload, info.args[k]) : 0;
    char digits[24];
    auto [end, ec] = std::to_chars(digits, digits + sizeof(digits), value);
    message.append(digits, static_cast<size_t>(end - digits));
    message += info.segments[k + 1];
  }
  if (info.attach_exception && op.caught_slot >= 0) {
    const ExcValue& caught =
        thread->caughts[static_cast<size_t>(frame.caught_base + op.caught_slot)];
    if (caught.valid()) {
      message += " [exc=";
      AppendExceptionDescription(&message, caught);
      message += ']';
    }
  }
}

Simulator::RaiseResult Simulator::FlatRaise(Thread* thread, ExcValue exc) {
  const std::vector<ir::FlatOp>& ops = flat_->ops();
  while (!thread->fstack.empty()) {
    FlatFrame& frame = thread->fstack.back();
    int32_t handler_id = ops[static_cast<size_t>(frame.pc)].handler;
    while (handler_id >= 0) {
      const ir::FlatHandler& handler = flat_->handler(handler_id);
      for (const ir::FlatCatchClause& clause : handler.clauses) {
        if (program_->ExceptionIsA(exc.type, clause.type)) {
          thread->caughts[static_cast<size_t>(frame.caught_base + handler.caught_slot)] =
              std::move(exc);
          frame.pc = clause.target;
          return RaiseResult::kHandled;
        }
      }
      handler_id = handler.parent;
    }
    PopFlatFrame(thread);
  }
  // Escaped the task root.
  if (thread->current_future > 0) {
    CompleteFuture(thread->current_future, std::move(exc));
    thread->current_future = -1;
    return RaiseResult::kTaskFailed;
  }
  HandleUncaught(thread, exc);
  return RaiseResult::kThreadDied;
}

void Simulator::PrepareFlatRun() {
  if (flat_ == nullptr) {
    // No shared FlatProgram supplied (direct Simulator users, Replay): lower
    // privately. Linear in program size, negligible next to a run.
    owned_flat_ = std::make_unique<ir::FlatProgram>(*program_);
    flat_ = owned_flat_.get();
  }
  flat_threads_.assign(node_names_.size() * flat_->thread_name_count(), -1);
  send_targets_.clear();
  send_targets_.reserve(flat_->send_count());
  for (size_t i = 0; i < flat_->send_count(); ++i) {
    const ir::FlatSend& send = flat_->send(i);
    if (send.target_index_var != ir::kInvalidId) {
      send_targets_.push_back(-1);  // dynamic target, resolved per execution
      continue;
    }
    auto it = node_index_.find(send.target_node);
    // Unknown static targets stay -1; the CHECK fires only if the send
    // actually executes, matching the tree walker.
    send_targets_.push_back(it == node_index_.end() ? -1 : it->second);
  }
}

// Direct-threaded dispatch loop. Each label is one tree-walker *step*; the
// shared `dispatch` point does the per-step bookkeeping (dead/idle checks,
// task pull, step limit, watchdog) and then jumps straight to the opcode's
// body via a computed goto (GCC/Clang) or a dense switch. Every body ends in
// ANDURIL_NEXT() or `return`; control never falls through between labels.
#if defined(__GNUC__) || defined(__clang__)
#define ANDURIL_COMPUTED_GOTO 1
#else
#define ANDURIL_COMPUTED_GOTO 0
#endif

void Simulator::RunThreadFlat(Thread* thread) {
  const ir::FlatOp* const ops = flat_->ops().data();
  int64_t* const env = env_[static_cast<size_t>(thread->node)].data();
  FlatFrame* frame;
  const ir::FlatOp* op;

  auto eval = [&](const ir::Expr& e, int64_t payload) -> int64_t {
    switch (e.kind) {
      case ir::ExprKind::kConst:
        return e.constant;
      case ir::ExprKind::kVar:
        return env[e.var];
      case ir::ExprKind::kPayload:
        return payload;
      case ir::ExprKind::kAdd:
        return env[e.var] + e.constant;
      case ir::ExprKind::kSub:
        return env[e.var] - e.constant;
      case ir::ExprKind::kAddVar:
        return env[e.var] + env[e.var2];
    }
    ANDURIL_UNREACHABLE();
  };
  auto test = [&](const ir::Cond& c) -> bool {
    if (c.op == ir::CmpOp::kTrue) {
      return true;
    }
    int64_t lhs = env[c.lhs];
    int64_t rhs = c.rhs_is_var ? env[c.rhs_var] : c.rhs_const;
    switch (c.op) {
      case ir::CmpOp::kEq:
        return lhs == rhs;
      case ir::CmpOp::kNe:
        return lhs != rhs;
      case ir::CmpOp::kLt:
        return lhs < rhs;
      case ir::CmpOp::kLe:
        return lhs <= rhs;
      case ir::CmpOp::kGt:
        return lhs > rhs;
      case ir::CmpOp::kGe:
        return lhs >= rhs;
      case ir::CmpOp::kTrue:
        break;
    }
    ANDURIL_UNREACHABLE();
  };

#if ANDURIL_COMPUTED_GOTO
  // Indexed by OpCode; must match the enum order in flatten.h.
  static const void* const kDispatchTable[ir::kOpCodeCount] = {
      &&op_nop,        &&op_jump,       &&op_assign,     &&op_log,
      &&op_branch,     &&op_loop_enter, &&op_loop_back,  &&op_invoke,
      &&op_throw,      &&op_rethrow,    &&op_external,   &&op_await,
      &&op_signal,     &&op_send,       &&op_submit,     &&op_future_get,
      &&op_sleep,      &&op_return};
#define ANDURIL_OP(code, label) label:
#else
#define ANDURIL_OP(code, label) case ir::OpCode::code:
#endif
#define ANDURIL_NEXT() goto dispatch

dispatch:
  if (thread->state == Thread::State::kDead) {
    return;
  }
  if (thread->fstack.empty()) {
    if (thread->queue.empty()) {
      thread->state = Thread::State::kIdle;
      return;
    }
    Task task = thread->queue.front();
    thread->queue.pop_front();
    thread->current_future = task.future;
    PushFlatFrame(thread, task.method, task.payload);
  }
  if (++steps_ > spec_->step_limit) {
    hit_step_limit_ = true;
    return;
  }
  if ((steps_ & 2047) == 0 && WallBudgetExceeded()) {
    return;
  }
  // Re-acquired every step: op bodies may push frames (fstack realloc).
  frame = &thread->fstack.back();
  op = ops + frame->pc;
#if ANDURIL_COMPUTED_GOTO
  goto* kDispatchTable[static_cast<size_t>(op->code)];
#else
  switch (op->code) {
#endif

  ANDURIL_OP(kNop, op_nop) {
    ++frame->pc;
    ANDURIL_NEXT();
  }

  ANDURIL_OP(kJump, op_jump) {
    frame->pc = op->target;
    ANDURIL_NEXT();
  }

  ANDURIL_OP(kAssign, op_assign) {
    env[op->var] = eval(op->expr, frame->payload);
    ++frame->pc;
    ANDURIL_NEXT();
  }

  ANDURIL_OP(kLog, op_log) {
    EmitLogFlat(thread, *frame, *op);
    ++frame->pc;
    ANDURIL_NEXT();
  }

  ANDURIL_OP(kBranch, op_branch) {
    frame->pc = test(op->cond) ? op->target : op->target2;
    ANDURIL_NEXT();
  }

  ANDURIL_OP(kLoopEnter, op_loop_enter) {
    if (test(op->cond)) {
      thread->loop_iters[static_cast<size_t>(frame->loop_base + op->loop_slot)] = 1;
      ++frame->pc;
    } else {
      frame->pc = op->target;
    }
    ANDURIL_NEXT();
  }

  ANDURIL_OP(kLoopBack, op_loop_back) {
    if (test(op->cond)) {
      int64_t& iter =
          thread->loop_iters[static_cast<size_t>(frame->loop_base + op->loop_slot)];
      ANDURIL_CHECK_LT(iter, kWhileIterationCap)
          << "runaway loop in " << program_->method(op->source.method).name;
      ++iter;
      frame->pc = op->target;
    } else {
      ++frame->pc;
    }
    ANDURIL_NEXT();
  }

  ANDURIL_OP(kInvoke, op_invoke) {
    // Caller pc stays on the kInvoke; the callee's kReturn advances it.
    PushFlatFrame(thread, op->callee, frame->payload);
    ANDURIL_NEXT();
  }

  ANDURIL_OP(kThrow, op_throw) {
    ExcValue exc;
    exc.type = op->exception_type;
    exc.origin = op->source;
    exc.origin_site = op->site;
    FlatRaise(thread, std::move(exc));
    ANDURIL_NEXT();
  }

  ANDURIL_OP(kRethrow, op_rethrow) {
    ANDURIL_CHECK_GE(op->caught_slot, 0) << "rethrow with no in-flight exception";
    ExcValue exc = thread->caughts[static_cast<size_t>(frame->caught_base + op->caught_slot)];
    ANDURIL_CHECK(exc.valid()) << "rethrow with no in-flight exception";
    FlatRaise(thread, std::move(exc));
    ANDURIL_NEXT();
  }

  ANDURIL_OP(kExternalCall, op_external) {
    FaultAction action = fault_runtime_->OnExternalCallFast(
        op->site, op->exception_type, op->transient_every_n,
        static_cast<int64_t>(log_len_), now_, thread->id);
    if (!action.fired && action.exception == ir::kInvalidId) {
      ++frame->pc;
      ANDURIL_NEXT();
    }
    if (action.fired && action.kind == FaultKind::kCrash) {
      // The node halts at this call. No log line, no exception: the
      // per-thread log is simply truncated here, like a killed process.
      CrashNode(thread->node);
      return;
    }
    if (action.fired && action.kind == FaultKind::kStall) {
      // The call never returns. No wake event is scheduled, so the thread
      // stays wedged until the run's budget expires.
      BlockThread(thread, Thread::BlockKind::kStall, op->source);
      stall_fired_ = true;
      return;
    }
    ExcValue exc;
    exc.type = action.exception;
    exc.origin = op->source;
    exc.origin_site = op->site;
    exc.injected = action.injected;
    FlatRaise(thread, std::move(exc));
    ANDURIL_NEXT();
  }

  ANDURIL_OP(kAwait, op_await) {
    if (test(op->cond)) {
      ++frame->pc;
      ANDURIL_NEXT();
    }
    BlockThread(thread, Thread::BlockKind::kAwait, op->source);
    op->cond.CollectReads(&thread->wait_vars);
    for (ir::VarId var : thread->wait_vars) {
      waiters_[WaiterKey(thread->node, var)].push_back(thread->id);
    }
    if (op->timeout_ms >= 0) {
      Event event;
      event.time = now_ + op->timeout_ms;
      event.kind = Event::Kind::kTimer;
      event.thread = thread->id;
      event.epoch = thread->epoch;
      PushEvent(event);
    }
    return;
  }

  ANDURIL_OP(kSignal, op_signal) {
    WakeWaitersOf(thread->node, op->var);
    ++frame->pc;
    ANDURIL_NEXT();
  }

  ANDURIL_OP(kSend, op_send) {
    const ir::FlatSend& send = flat_->send(op->aux);
    FaultAction action = fault_runtime_->OnSendFast(
        op->site, static_cast<int64_t>(log_len_), now_, thread->id);
    int32_t target_node;
    if (send.target_index_var != ir::kInvalidId) {
      std::string target = send.target_node + std::to_string(env[send.target_index_var]);
      target_node = NodeIndex(target);
    } else {
      target_node = send_targets_[static_cast<size_t>(op->aux)];
      ANDURIL_CHECK_GE(target_node, 0) << "unknown node " << send.target_node;
    }
    Thread* target_thread = FlatThread(target_node, send.handler_name);
    network_.OnMessageSent();
    Event event;
    // The jitter draw stays unconditional so a fired network fault never
    // shifts the rng stream of the rest of the run.
    event.time = now_ + send.latency_ms + static_cast<int64_t>(rng_.NextBelow(2));
    event.kind = Event::Kind::kDeliver;
    event.thread = target_thread->id;
    event.src_node = thread->node;
    event.task = Task{send.callee, eval(op->expr, frame->payload), -1};
    bool duplicate = false;
    if (action.fired) {
      switch (action.kind) {
        case FaultKind::kDrop:
          network_.DropMessage();
          ++frame->pc;  // the message vanishes silently
          ANDURIL_NEXT();
        case FaultKind::kDelay:
          event.time += network_.DelayFor(op->site, action.occurrence, spec_->network_delay_ms);
          break;
        case FaultKind::kDuplicate:
          network_.DuplicateMessage();
          duplicate = true;
          break;
        case FaultKind::kPartition:
          // Severs the pair; the triggering message is then swallowed by
          // the severed-pair check below, like everything after it.
          network_.Sever(thread->node, target_node, now_, spec_->partition_heal_ms);
          break;
        default:
          ANDURIL_UNREACHABLE();  // OnSend only fires network kinds
      }
    }
    if (network_.SeveredDrop(thread->node, target_node, now_)) {
      ++frame->pc;
      ANDURIL_NEXT();
    }
    PushEvent(event);
    if (duplicate) {
      PushEvent(event);  // same delivery time, later seq
    }
    ++frame->pc;
    ANDURIL_NEXT();
  }

  ANDURIL_OP(kSubmit, op_submit) {
    futures_.emplace_back();
    int64_t future_id = static_cast<int64_t>(futures_.size()) - 1;
    env[op->var] = future_id;
    Thread* executor = FlatThread(thread->node, op->thread_name);
    Event event;
    event.time = now_;
    event.kind = Event::Kind::kDeliver;
    event.thread = executor->id;
    event.task = Task{op->callee, eval(op->expr, frame->payload), future_id};
    PushEvent(event);
    ++frame->pc;
    ANDURIL_NEXT();
  }

  ANDURIL_OP(kFutureGet, op_future_get) {
    int64_t future_id = env[op->var];
    ANDURIL_CHECK_GT(future_id, 0)
        << "FutureGet before Submit in " << program_->method(op->source.method).name;
    ANDURIL_CHECK_LT(static_cast<size_t>(future_id), futures_.size());
    FutureState& future = futures_[static_cast<size_t>(future_id)];
    if (future.done) {
      if (!future.exception.valid()) {
        ++frame->pc;
        ANDURIL_NEXT();
      }
      ANDURIL_CHECK_NE(execution_exception_, ir::kInvalidId)
          << "program uses futures but does not define ExecutionException";
      ExcValue exc;
      exc.type = execution_exception_;
      exc.origin = op->source;
      exc.cause = std::make_shared<ExcValue>(future.exception);
      exc.injected = future.exception.injected;
      FlatRaise(thread, std::move(exc));
      ANDURIL_NEXT();
    }
    BlockThread(thread, Thread::BlockKind::kFuture, op->source);
    thread->wait_future = future_id;
    future.waiters.push_back(thread->id);
    if (op->timeout_ms >= 0) {
      Event event;
      event.time = now_ + op->timeout_ms;
      event.kind = Event::Kind::kTimer;
      event.thread = thread->id;
      event.epoch = thread->epoch;
      PushEvent(event);
    }
    return;
  }

  ANDURIL_OP(kSleep, op_sleep) {
    BlockThread(thread, Thread::BlockKind::kSleep, op->source);
    Event event;
    event.time = now_ + op->sleep_ms;
    event.kind = Event::Kind::kTimer;
    event.thread = thread->id;
    event.epoch = thread->epoch;
    PushEvent(event);
    return;
  }

  ANDURIL_OP(kReturn, op_return) {
    PopFlatFrame(thread);
    if (thread->fstack.empty()) {
      if (thread->current_future > 0) {
        CompleteFuture(thread->current_future, ExcValue{});
        thread->current_future = -1;
      }
    } else {
      ++thread->fstack.back().pc;
    }
    ANDURIL_NEXT();
  }

#if !ANDURIL_COMPUTED_GOTO
  }
  ANDURIL_UNREACHABLE();
#endif
#undef ANDURIL_OP
#undef ANDURIL_NEXT
}

void Simulator::ProcessWakeFlat(const Event& event) {
  Thread* thread = threads_[static_cast<size_t>(event.thread)].get();
  if (thread->state != Thread::State::kBlocked || event.epoch != thread->epoch) {
    return;  // stale wake
  }
  ANDURIL_CHECK(!thread->fstack.empty());
  // The blocked thread's pc still points at the blocking op.
  const ir::FlatOp& op = flat_->ops()[static_cast<size_t>(thread->fstack.back().pc)];

  auto resume = [&]() {
    UnblockThread(thread);
    ++thread->fstack.back().pc;
    RunThreadFlat(thread);
  };
  auto raise_here = [&](ExcValue exc) {
    UnblockThread(thread);
    FlatRaise(thread, std::move(exc));
    RunThreadFlat(thread);
  };

  switch (thread->block_kind) {
    case Thread::BlockKind::kAwait: {
      if (event.kind == Event::Kind::kTimer) {
        // Timeout elapsed; condition still unsatisfied (a satisfied one
        // would have unblocked us via a signal wake).
        if (EvalCondAt(thread->node, op.cond)) {
          resume();
          return;
        }
        if (op.exception_type != ir::kInvalidId) {
          ExcValue exc;
          exc.type = op.exception_type;
          exc.origin = op.source;
          exc.origin_site = op.site;
          raise_here(std::move(exc));
          return;
        }
        resume();
        return;
      }
      // Signal wake: re-check the condition.
      if (EvalCondAt(thread->node, op.cond)) {
        resume();
      }
      // else: spurious wake; stay blocked (epoch unchanged, timer intact).
      return;
    }

    case Thread::BlockKind::kFuture: {
      if (event.kind == Event::Kind::kTimer) {
        if (op.exception_type != ir::kInvalidId) {
          ExcValue exc;
          exc.type = op.exception_type;
          exc.origin = op.source;
          exc.origin_site = op.site;
          raise_here(std::move(exc));
          return;
        }
        resume();
        return;
      }
      FutureState& future = futures_[static_cast<size_t>(thread->wait_future)];
      ANDURIL_CHECK(future.done);
      if (future.exception.valid()) {
        ANDURIL_CHECK_NE(execution_exception_, ir::kInvalidId);
        ExcValue exc;
        exc.type = execution_exception_;
        exc.origin = op.source;
        exc.cause = std::make_shared<ExcValue>(future.exception);
        exc.injected = future.exception.injected;
        raise_here(std::move(exc));
        return;
      }
      resume();
      return;
    }

    case Thread::BlockKind::kSleep:
      resume();
      return;

    case Thread::BlockKind::kStall:
      return;  // a stalled call never wakes

    case Thread::BlockKind::kNone:
      ANDURIL_UNREACHABLE();
  }
}

void Simulator::CrashNode(int32_t node) {
  crashed_node_indices_.push_back(node);
  network_.MarkCrashed(node);
  for (auto& thread : threads_) {
    if (thread->node != node || thread->state == Thread::State::kDead) {
      continue;
    }
    thread->state = Thread::State::kDead;
    thread->crashed = true;
    thread->block_kind = Thread::BlockKind::kNone;
    ++thread->epoch;  // pending wakes/timers for this thread go stale
    thread->queue.clear();
    thread->stack.clear();
    thread->fstack.clear();
    thread->loop_iters.clear();
    thread->caughts.clear();
  }
}

bool Simulator::WallBudgetExceeded() {
  if (!wall_limited_ || hit_wall_budget_) {
    return hit_wall_budget_;
  }
  if (std::chrono::steady_clock::now() >= wall_deadline_) {
    hit_wall_budget_ = true;
  }
  return hit_wall_budget_;
}

RunResult Simulator::Run() {
  ANDURIL_CHECK(!ran_) << "Simulator::Run may be called once";
  ran_ = true;
  if (use_flat_) {
    PrepareFlatRun();
  }
  fault_runtime_->BeginRun();
  wall_limited_ = spec_->wall_budget_ms > 0;
  if (wall_limited_) {
    wall_deadline_ =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(spec_->wall_budget_ms);
  }

  for (const InitialTask& task : spec_->tasks) {
    Thread* thread = GetThread(NodeIndex(task.node), task.thread);
    Event event;
    event.time = task.start_ms;
    event.kind = Event::Kind::kDeliver;
    event.thread = thread->id;
    event.task = Task{task.method, task.payload, -1};
    PushEvent(event);
  }

  while (!event_heap_.empty() && !hit_step_limit_ && !hit_wall_budget_) {
    Event event = PopEvent();
    if (event.time > spec_->time_limit_ms) {
      hit_time_limit_ = true;
      break;
    }
    if ((++events_processed_ & 255) == 0 && WallBudgetExceeded()) {
      break;
    }
    now_ = event.time;
    switch (event.kind) {
      case Event::Kind::kDeliver: {
        Thread* thread = threads_[static_cast<size_t>(event.thread)].get();
        // Cross-node messages consult the network first: an in-flight
        // message to a crashed node, or one crossing a pair that was severed
        // while it was in flight, is dropped (and counted) by the model.
        if (event.src_node >= 0 &&
            (network_.CrashedDrop(thread->node) ||
             network_.SeveredDrop(event.src_node, thread->node, now_))) {
          break;
        }
        if (thread->state == Thread::State::kDead) {
          break;  // message to a thread dead from an uncaught exception
        }
        thread->queue.push_back(event.task);
        if (thread->state == Thread::State::kIdle &&
            (use_flat_ ? thread->fstack.empty() : thread->stack.empty())) {
          if (use_flat_) {
            RunThreadFlat(thread);
          } else {
            RunThread(thread);
          }
        }
        break;
      }
      case Event::Kind::kWake:
      case Event::Kind::kTimer:
        if (use_flat_) {
          ProcessWakeFlat(event);
        } else {
          ProcessWake(event);
        }
        break;
    }
  }

  RunResult result;
  if (scratch_ != nullptr && log_len_ > scratch_->impl_->log_reserve) {
    scratch_->impl_->log_reserve = log_len_;
  }
  // Trim recycled shells this run did not reach, then hand the vector over.
  log_.resize(log_len_);
  result.log = std::move(log_);
  log_len_ = 0;
  if (scratch_ != nullptr) {
    // Refill the recycled trace buffer (capacity survives) instead of
    // growing a fresh vector every run.
    result.trace = std::move(scratch_->impl_->trace_pool);
  }
  fault_runtime_->CopyTraceTo(&result.trace);
  result.end_time_ms = now_;
  result.hit_time_limit = hit_time_limit_;
  result.hit_step_limit = hit_step_limit_;
  result.hit_wall_budget = hit_wall_budget_;
  result.injection_requests = fault_runtime_->injection_requests();
  result.decision_nanos = fault_runtime_->decision_nanos();
  result.pinned_fired = fault_runtime_->pinned_fired();
  result.injected = fault_runtime_->injected();
  result.preempted_window = fault_runtime_->preempted_window();
  for (int32_t node : crashed_node_indices_) {
    result.crashed_nodes.push_back(node_names_[static_cast<size_t>(node)]);
  }
  // A run is partitioned-stuck when a partition fault fired, actually
  // dropped messages, never healed, and left some thread blocked waiting for
  // work that can no longer arrive.
  bool partitioned_stuck = false;
  if (network_.stats().dropped_by_partition > 0 && network_.HasUnhealedPartition(now_)) {
    for (const auto& thread : threads_) {
      if (thread->state == Thread::State::kBlocked) {
        partitioned_stuck = true;
        break;
      }
    }
  }
  if (!crashed_node_indices_.empty()) {
    result.outcome = RunOutcome::kCrashed;
  } else if (stall_fired_) {
    result.outcome = RunOutcome::kHung;
  } else if (partitioned_stuck) {
    result.outcome = RunOutcome::kPartitionedStuck;
  } else if (hit_wall_budget_ || hit_step_limit_ || hit_time_limit_) {
    result.outcome = RunOutcome::kBudgetExceeded;
  } else {
    result.outcome = RunOutcome::kCompleted;
  }
  result.network = network_.stats();
  for (const PartitionEvent& transition : network_.TakeEvents()) {
    result.partition_events.push_back(PartitionTransition{
        transition.time_ms, node_names_[static_cast<size_t>(transition.node_a)],
        node_names_[static_cast<size_t>(transition.node_b)], transition.sever});
  }

  for (const auto& thread : threads_) {
    ThreadSummary summary;
    summary.node = node_names_[static_cast<size_t>(thread->node)];
    summary.name = thread->name;
    if (thread->crashed) {
      summary.state = ThreadEndState::kCrashed;
    } else if (thread->state == Thread::State::kDead) {
      summary.state = ThreadEndState::kDied;
      summary.death_exception = thread->death_exception;
    } else if (thread->state == Thread::State::kBlocked) {
      summary.state = ThreadEndState::kBlocked;
      summary.blocked_at = thread->blocked_at;
      if (use_flat_) {
        if (!thread->fstack.empty()) {
          summary.current_method = thread->fstack.back().method;
        }
      } else if (!thread->stack.empty()) {
        summary.current_method = thread->stack.back().method;
      }
    } else {
      summary.state = ThreadEndState::kFinished;
    }
    result.threads.push_back(std::move(summary));
  }

  for (size_t n = 0; n < node_names_.size(); ++n) {
    auto& vars = result.node_vars[node_names_[n]];
    for (size_t v = 0; v < env_[n].size(); ++v) {
      if (env_[n][v] != 0) {
        vars[static_cast<ir::VarId>(v)] = env_[n][v];
      }
    }
  }

  // Metrics flush: logical quantities only (steps, events, simulated time,
  // outcomes) — never wall clock — so the registry stays byte-identical
  // across thread counts under a fixed seed.
  if (metrics_ != nullptr) {
    metrics_->Add("sim.runs");
    metrics_->Observe("sim.steps", steps_);
    metrics_->Observe("sim.events", static_cast<int64_t>(events_processed_));
    metrics_->Observe("sim.end_time_ms", now_);
    metrics_->Add(std::string("sim.outcome.") + RunOutcomeName(result.outcome));
    fault_runtime_->FlushMetrics(metrics_);
    network_.FlushMetrics(metrics_);
  }
  if (scratch_ != nullptr) {
    ReturnScratch();
  }
  return result;
}

}  // namespace anduril::interp
