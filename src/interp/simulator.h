// Deterministic discrete-event interpreter for the anduril IR.
//
// A Simulator executes one run of a simulated distributed system: nodes with
// per-node variable state, named threads processing tasks serially, message
// passing with latency, executor/future semantics with cross-thread
// exception wrapping (Java's ExecutionException, §4.1 of the paper), condition
// waits with timeouts, Log4j-style logging, and fault-injection hooks at
// every external-call fault site.
//
// Determinism: a run is a pure function of (program, cluster spec, seed,
// injection window). This is what lets a successful search end with a script
// that deterministically reproduces the failure (§3 step 4.a).
//
// Execution modes: by default the simulator runs the flattened
// direct-threaded program (ir::FlatProgram) — a caller may supply a shared
// pre-built one (the explorer builds it once per context), otherwise the
// simulator compiles its own at Run(). set_tree_walk(true) selects the
// original statement-tree walker instead; both modes execute the identical
// step sequence and produce identical RunResults (asserted across all
// registered scenarios by tests/interp_equivalence_test.cc), differing only
// in speed.
//
// Thread compatibility: a Simulator only *reads* the Program, ClusterSpec,
// and FlatProgram it is given (all held by const pointer; none has lazy
// caches or other hidden mutation) and keeps all run state in its own
// members. Distinct (FaultRuntime, Simulator) pairs over the same shared
// Program/ClusterSpec/FlatProgram may therefore run concurrently — the
// property the parallel exploration engine fans out on. A single Simulator
// instance is not thread-safe.

#ifndef ANDURIL_SRC_INTERP_SIMULATOR_H_
#define ANDURIL_SRC_INTERP_SIMULATOR_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/interp/cluster.h"
#include "src/interp/fault_runtime.h"
#include "src/interp/log_entry.h"
#include "src/interp/network_model.h"
#include "src/interp/run_result.h"
#include "src/ir/flatten.h"
#include "src/ir/program.h"
#include "src/util/rng.h"

namespace anduril::obs {
class MetricsRegistry;
}  // namespace anduril::obs

namespace anduril::interp {

class Simulator;

// Reusable per-run buffer pool. A worker thread keeps one RunScratch alive
// (e.g. thread_local) and hands it to every Simulator it constructs; the
// simulator borrows the pooled containers for the duration of the run and
// returns them — cleared, capacity intact — when Run() finishes, so
// back-to-back runs on the same worker stop paying per-run allocation for
// their environments, thread tables, event heaps, and futures. Optional:
// a null scratch simply allocates fresh buffers. One RunScratch serves one
// Simulator at a time and is not thread-safe.
class RunScratch {
 public:
  RunScratch();
  ~RunScratch();
  RunScratch(const RunScratch&) = delete;
  RunScratch& operator=(const RunScratch&) = delete;

  // Hands a consumed RunResult's buffers back for reuse. The next run on
  // this scratch overwrites the recycled log entries in place — their string
  // capacity survives, so steady-state log emission allocates nothing — and
  // refills the recycled trace buffer instead of growing a fresh one.
  // Optional: results that are kept alive (or never returned) simply cost
  // the allocations again on the following run.
  void Recycle(RunResult&& result);

 private:
  friend class Simulator;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

class Simulator {
 public:
  // `flat` is an optional pre-built flattening of `program` (shared,
  // read-only); when null and the flat mode is active, Run() compiles one
  // privately. `scratch` optionally pools per-run buffers across runs.
  Simulator(const ir::Program* program, const ClusterSpec* spec, uint64_t seed,
            FaultRuntime* fault_runtime, const ir::FlatProgram* flat = nullptr,
            RunScratch* scratch = nullptr);
  ~Simulator();

  // Selects the legacy statement-tree walker instead of the flattened
  // dispatch loop. Kept for differential testing while the flattened path
  // burns in (ExplorerOptions::tree_walk_interpreter); call before Run().
  void set_tree_walk(bool tree_walk) { use_flat_ = !tree_walk; }

  // Attaches a metrics sink; at the end of Run() the simulator folds its
  // per-run accounting ("sim.*") plus the fault runtime's ("fault.*") and
  // network model's ("net.*") into it. Null (the default) disables the flush
  // entirely — a single pointer test per run.
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

  // Executes the run to completion and returns the result. Call once.
  RunResult Run();

 private:
  friend class RunScratch;
  friend struct RunScratch::Impl;

  // --- Runtime exception values ---------------------------------------------
  struct ExcValue {
    ir::ExceptionTypeId type = ir::kInvalidId;
    ir::GlobalStmt origin;
    ir::FaultSiteId origin_site = ir::kInvalidId;
    bool injected = false;
    std::shared_ptr<ExcValue> cause;

    bool valid() const { return type != ir::kInvalidId; }
    const ExcValue& Root() const { return cause ? cause->Root() : *this; }
  };

  // --- Interpreter frames -----------------------------------------------------
  struct Cursor {
    enum class Ctx : uint8_t { kPlain, kWhileBody, kTryBody, kCatchBody };
    ir::StmtId block = ir::kInvalidId;
    int32_t next_child = 0;
    Ctx ctx = Ctx::kPlain;
    ir::StmtId ctx_stmt = ir::kInvalidId;  // the While / TryCatch statement
    int64_t loop_iter = 0;
    ExcValue caught;  // valid in kCatchBody
  };

  struct Frame {
    ir::MethodId method = ir::kInvalidId;
    int64_t payload = 0;
    std::vector<Cursor> cursors;
  };

  // Call frame of the flattened dispatch loop: a program counter into the
  // shared op array plus this frame's base offsets into the thread's
  // loop-iteration and caught-exception slot stacks.
  struct FlatFrame {
    int32_t pc = 0;
    ir::MethodId method = ir::kInvalidId;
    int64_t payload = 0;
    int32_t loop_base = 0;
    int32_t caught_base = 0;
  };

  struct Task {
    ir::MethodId method = ir::kInvalidId;
    int64_t payload = 0;
    int64_t future = -1;  // future completed when this task finishes
  };

  struct Thread {
    int32_t id = -1;
    int32_t node = -1;
    std::string name;
    std::deque<Task> queue;
    std::vector<Frame> stack;       // tree-walk mode
    std::vector<FlatFrame> fstack;  // flat mode
    std::vector<int64_t> loop_iters;  // flat mode: frame-relative loop slots
    std::vector<ExcValue> caughts;    // flat mode: frame-relative caught slots
    int64_t current_future = -1;

    enum class State : uint8_t { kIdle, kBlocked, kDead };
    State state = State::kIdle;
    bool crashed = false;  // dead because its node crashed, not an exception

    enum class BlockKind : uint8_t { kNone, kAwait, kFuture, kSleep, kStall };
    BlockKind block_kind = BlockKind::kNone;
    ir::GlobalStmt blocked_at;
    uint64_t epoch = 0;  // stale-wakeup guard
    std::vector<ir::VarId> wait_vars;
    int64_t wait_future = -1;
    ir::ExceptionTypeId death_exception = ir::kInvalidId;
  };

  struct FutureState {
    bool done = false;
    ExcValue exception;  // invalid type = success
    std::vector<int32_t> waiters;
  };

  struct Event {
    int64_t time = 0;
    uint64_t seq = 0;
    enum class Kind : uint8_t { kDeliver, kWake, kTimer } kind = Kind::kDeliver;
    int32_t thread = -1;
    uint64_t epoch = 0;
    // Sending node for cross-node (kSend) deliveries; -1 for same-node work
    // (kSubmit, initial tasks), which never touches the network.
    int32_t src_node = -1;
    Task task;  // kDeliver

    bool operator>(const Event& other) const {
      if (time != other.time) {
        return time > other.time;
      }
      return seq > other.seq;
    }
  };

  // Heap entry for the event queue: the ordering key plus a slot index into
  // events_. Sifting moves these 16-byte refs instead of whole Events
  // (~64 bytes with an embedded Task). (time, seq) is a total order — seq is
  // unique per run and a run never pushes more than 2^32 events — so the pop
  // sequence is identical to heaping the Events themselves; determinism is
  // unaffected.
  struct EventRef {
    int64_t time = 0;
    uint32_t seq = 0;
    uint32_t slot = 0;

    bool operator>(const EventRef& other) const {
      if (time != other.time) {
        return time > other.time;
      }
      return seq > other.seq;
    }
  };

  enum class StepResult : uint8_t { kContinue, kBlocked, kTaskDone, kTaskFailed, kDied };
  enum class RaiseResult : uint8_t { kHandled, kTaskFailed, kThreadDied };

  // --- Tree-walk core loop ----------------------------------------------------
  void RunThread(Thread* thread);
  StepResult Step(Thread* thread);
  StepResult ExecStmt(Thread* thread, ir::MethodId method_id, ir::StmtId stmt_id);
  RaiseResult Raise(Thread* thread, ExcValue exc);
  void HandleUncaught(Thread* thread, const ExcValue& exc);
  void ProcessWake(const Event& event);

  // --- Flattened core loop ----------------------------------------------------
  void RunThreadFlat(Thread* thread);
  RaiseResult FlatRaise(Thread* thread, ExcValue exc);
  void ProcessWakeFlat(const Event& event);
  void PushFlatFrame(Thread* thread, ir::MethodId method, int64_t payload);
  void PopFlatFrame(Thread* thread);
  Thread* FlatThread(int32_t node, int32_t name_id);
  void EmitLogFlat(Thread* thread, const FlatFrame& frame, const ir::FlatOp& op);
  void PrepareFlatRun();

  // --- Helpers ----------------------------------------------------------------
  int32_t NodeIndex(const std::string& name) const;
  Thread* GetThread(int32_t node, const std::string& name);
  int64_t& EnvRef(int32_t node, ir::VarId var);
  int64_t EvalExpr(const Thread& thread, const Frame& frame, const ir::Expr& expr);
  bool EvalCond(const Thread& thread, const ir::Cond& cond);
  int64_t EvalExprAt(int32_t node, int64_t payload, const ir::Expr& expr) const;
  bool EvalCondAt(int32_t node, const ir::Cond& cond) const;
  void EmitLog(Thread* thread, const ir::Stmt& stmt, ir::MethodId method_id,
               ir::StmtId stmt_id);
  void EmitBuiltinLog(Thread* thread, ir::LogLevel level, const std::string& logger,
                      const std::string& message, ir::MethodId uncaught_method);
  // Returns the next log slot: a recycled entry (overwritten in place by the
  // caller — every field, or stale data leaks across runs) when one is
  // available, else a freshly appended one. Advances log_len_.
  LogEntry& NextLogEntry() {
    if (log_len_ < log_.size()) {
      return log_[log_len_++];
    }
    ++log_len_;
    return log_.emplace_back();
  }
  std::string DescribeException(const ExcValue& exc) const;
  // Appends DescribeException(exc) to `out` byte-for-byte, without the
  // vsnprintf round trips (the flat interpreter's log hot path).
  void AppendExceptionDescription(std::string* out, const ExcValue& exc) const;
  void PushEvent(Event event);
  Event PopEvent();
  // Halts every thread on `node`: clears queues and stacks, bumps epochs so
  // pending wakes go stale, and marks the node crashed in the NetworkModel,
  // which drops in-flight messages to it (so crash and network faults
  // compose in one place; the event loop's dead-thread check remains as the
  // backstop for threads dead from uncaught exceptions).
  void CrashNode(int32_t node);
  // Watchdog: true once the host wall-clock budget is spent. Polled at every
  // event and every few thousand interpreter steps.
  bool WallBudgetExceeded();
  void BlockThread(Thread* thread, Thread::BlockKind kind, ir::GlobalStmt at);
  void UnblockThread(Thread* thread);
  void WakeWaitersOf(int32_t node, ir::VarId var);
  void CompleteFuture(int64_t future_id, ExcValue exc);
  const ExcValue* CurrentCaught(const Thread& thread) const;
  void ResetThread(Thread* thread);
  void BorrowScratch();
  void ReturnScratch();

  const ir::Program* program_;
  const ClusterSpec* spec_;
  FaultRuntime* fault_runtime_;
  const ir::FlatProgram* flat_ = nullptr;
  std::unique_ptr<ir::FlatProgram> owned_flat_;
  bool use_flat_ = true;
  RunScratch* scratch_ = nullptr;
  Rng rng_;
  NetworkModel network_;

  std::vector<std::string> node_names_;
  std::unordered_map<std::string, int32_t> node_index_;
  std::vector<std::vector<int64_t>> env_;  // [node][var]

  std::vector<std::unique_ptr<Thread>> threads_;
  std::unordered_map<std::string, int32_t> thread_index_;  // "node_idx/name"

  // Flat mode: (node * thread_name_count + name_id) -> thread id, lazily
  // filled so hot Send/Submit statements skip the string-keyed map.
  std::vector<int32_t> flat_threads_;
  // Flat mode: per-FlatSend static target node index (-1 = dynamic target or
  // unknown node; unknown is CHECKed when the send executes, matching the
  // tree walker).
  std::vector<int32_t> send_targets_;

  // (node, var) -> blocked waiter thread ids
  std::unordered_map<int64_t, std::vector<int32_t>> waiters_;

  std::vector<FutureState> futures_;  // futures_[0] unused; ids start at 1

  // Event queue: events_ is a slot store (recycled via free_event_slots_)
  // and event_heap_ is the min-heap of EventRefs ordered by (time, seq) (a
  // plain vector + push/pop_heap rather than priority_queue so the buffers
  // can be pooled).
  std::vector<Event> events_;
  std::vector<EventRef> event_heap_;
  std::vector<int32_t> free_event_slots_;
  uint64_t event_seq_ = 0;
  int64_t now_ = 0;
  int64_t steps_ = 0;

  // The run's log stream. log_len_ is the live count: entries past it are
  // recycled LogEntry shells from a previous run on the same scratch (their
  // strings keep their heap buffers; NextLogEntry reuses them in place).
  // Run() trims to log_len_ before moving the vector into the result.
  std::vector<LogEntry> log_;
  size_t log_len_ = 0;
  ir::ExceptionTypeId execution_exception_ = ir::kInvalidId;

  bool hit_time_limit_ = false;
  bool hit_step_limit_ = false;
  bool hit_wall_budget_ = false;
  bool stall_fired_ = false;
  std::vector<int32_t> crashed_node_indices_;
  bool wall_limited_ = false;
  std::chrono::steady_clock::time_point wall_deadline_;
  uint64_t events_processed_ = 0;
  bool ran_ = false;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace anduril::interp

#endif  // ANDURIL_SRC_INTERP_SIMULATOR_H_
