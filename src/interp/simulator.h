// Deterministic discrete-event interpreter for the anduril IR.
//
// A Simulator executes one run of a simulated distributed system: nodes with
// per-node variable state, named threads processing tasks serially, message
// passing with latency, executor/future semantics with cross-thread
// exception wrapping (Java's ExecutionException, §4.1 of the paper), condition
// waits with timeouts, Log4j-style logging, and fault-injection hooks at
// every external-call fault site.
//
// Determinism: a run is a pure function of (program, cluster spec, seed,
// injection window). This is what lets a successful search end with a script
// that deterministically reproduces the failure (§3 step 4.a).
//
// Thread compatibility: a Simulator only *reads* the Program and ClusterSpec
// it is given (both held by const pointer; neither has lazy caches or other
// hidden mutation) and keeps all run state in its own members. Distinct
// (FaultRuntime, Simulator) pairs over the same shared Program/ClusterSpec
// may therefore run concurrently — the property the parallel exploration
// engine fans out on. A single Simulator instance is not thread-safe.

#ifndef ANDURIL_SRC_INTERP_SIMULATOR_H_
#define ANDURIL_SRC_INTERP_SIMULATOR_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/interp/cluster.h"
#include "src/interp/fault_runtime.h"
#include "src/interp/log_entry.h"
#include "src/interp/network_model.h"
#include "src/interp/run_result.h"
#include "src/ir/program.h"
#include "src/util/rng.h"

namespace anduril::obs {
class MetricsRegistry;
}  // namespace anduril::obs

namespace anduril::interp {

class Simulator {
 public:
  Simulator(const ir::Program* program, const ClusterSpec* spec, uint64_t seed,
            FaultRuntime* fault_runtime);

  // Attaches a metrics sink; at the end of Run() the simulator folds its
  // per-run accounting ("sim.*") plus the fault runtime's ("fault.*") and
  // network model's ("net.*") into it. Null (the default) disables the flush
  // entirely — a single pointer test per run.
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

  // Executes the run to completion and returns the result. Call once.
  RunResult Run();

 private:
  // --- Runtime exception values ---------------------------------------------
  struct ExcValue {
    ir::ExceptionTypeId type = ir::kInvalidId;
    ir::GlobalStmt origin;
    ir::FaultSiteId origin_site = ir::kInvalidId;
    bool injected = false;
    std::shared_ptr<ExcValue> cause;

    bool valid() const { return type != ir::kInvalidId; }
    const ExcValue& Root() const { return cause ? cause->Root() : *this; }
  };

  // --- Interpreter frames -----------------------------------------------------
  struct Cursor {
    enum class Ctx : uint8_t { kPlain, kWhileBody, kTryBody, kCatchBody };
    ir::StmtId block = ir::kInvalidId;
    int32_t next_child = 0;
    Ctx ctx = Ctx::kPlain;
    ir::StmtId ctx_stmt = ir::kInvalidId;  // the While / TryCatch statement
    int64_t loop_iter = 0;
    ExcValue caught;  // valid in kCatchBody
  };

  struct Frame {
    ir::MethodId method = ir::kInvalidId;
    int64_t payload = 0;
    std::vector<Cursor> cursors;
  };

  struct Task {
    ir::MethodId method = ir::kInvalidId;
    int64_t payload = 0;
    int64_t future = -1;  // future completed when this task finishes
  };

  struct Thread {
    int32_t id = -1;
    int32_t node = -1;
    std::string name;
    std::deque<Task> queue;
    std::vector<Frame> stack;
    int64_t current_future = -1;

    enum class State : uint8_t { kIdle, kBlocked, kDead };
    State state = State::kIdle;
    bool crashed = false;  // dead because its node crashed, not an exception

    enum class BlockKind : uint8_t { kNone, kAwait, kFuture, kSleep, kStall };
    BlockKind block_kind = BlockKind::kNone;
    ir::GlobalStmt blocked_at;
    uint64_t epoch = 0;  // stale-wakeup guard
    std::vector<ir::VarId> wait_vars;
    int64_t wait_future = -1;
    ir::ExceptionTypeId death_exception = ir::kInvalidId;
  };

  struct FutureState {
    bool done = false;
    ExcValue exception;  // invalid type = success
    std::vector<int32_t> waiters;
  };

  struct Event {
    int64_t time = 0;
    uint64_t seq = 0;
    enum class Kind : uint8_t { kDeliver, kWake, kTimer } kind = Kind::kDeliver;
    int32_t thread = -1;
    uint64_t epoch = 0;
    // Sending node for cross-node (kSend) deliveries; -1 for same-node work
    // (kSubmit, initial tasks), which never touches the network.
    int32_t src_node = -1;
    Task task;  // kDeliver

    bool operator>(const Event& other) const {
      if (time != other.time) {
        return time > other.time;
      }
      return seq > other.seq;
    }
  };

  enum class StepResult : uint8_t { kContinue, kBlocked, kTaskDone, kTaskFailed, kDied };
  enum class RaiseResult : uint8_t { kHandled, kTaskFailed, kThreadDied };

  // --- Core loop --------------------------------------------------------------
  void RunThread(Thread* thread);
  StepResult Step(Thread* thread);
  StepResult ExecStmt(Thread* thread, ir::MethodId method_id, ir::StmtId stmt_id);
  RaiseResult Raise(Thread* thread, ExcValue exc);
  void HandleUncaught(Thread* thread, const ExcValue& exc);
  void ProcessWake(const Event& event);

  // --- Helpers ----------------------------------------------------------------
  int32_t NodeIndex(const std::string& name) const;
  Thread* GetThread(int32_t node, const std::string& name);
  int64_t& EnvRef(int32_t node, ir::VarId var);
  int64_t EvalExpr(const Thread& thread, const Frame& frame, const ir::Expr& expr);
  bool EvalCond(const Thread& thread, const ir::Cond& cond);
  void EmitLog(Thread* thread, const ir::Stmt& stmt, ir::MethodId method_id,
               ir::StmtId stmt_id);
  void EmitBuiltinLog(Thread* thread, ir::LogLevel level, const std::string& logger,
                      const std::string& message, ir::MethodId uncaught_method);
  std::string DescribeException(const ExcValue& exc) const;
  void PushEvent(Event event);
  // Halts every thread on `node`: clears queues and stacks, bumps epochs so
  // pending wakes go stale, and marks the node crashed in the NetworkModel,
  // which drops in-flight messages to it (so crash and network faults
  // compose in one place; the event loop's dead-thread check remains as the
  // backstop for threads dead from uncaught exceptions).
  void CrashNode(int32_t node);
  // Watchdog: true once the host wall-clock budget is spent. Polled at every
  // event and every few thousand interpreter steps.
  bool WallBudgetExceeded();
  void BlockThread(Thread* thread, Thread::BlockKind kind, ir::GlobalStmt at);
  void UnblockThread(Thread* thread);
  void WakeWaitersOf(int32_t node, ir::VarId var);
  void CompleteFuture(int64_t future_id, ExcValue exc);
  const ExcValue* CurrentCaught(const Thread& thread) const;

  const ir::Program* program_;
  const ClusterSpec* spec_;
  FaultRuntime* fault_runtime_;
  Rng rng_;
  NetworkModel network_;

  std::vector<std::string> node_names_;
  std::unordered_map<std::string, int32_t> node_index_;
  std::vector<std::vector<int64_t>> env_;  // [node][var]

  std::vector<std::unique_ptr<Thread>> threads_;
  std::unordered_map<std::string, int32_t> thread_index_;  // "node_idx/name"

  // (node, var) -> blocked waiter thread ids
  std::unordered_map<int64_t, std::vector<int32_t>> waiters_;

  std::vector<FutureState> futures_;  // futures_[0] unused; ids start at 1

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events_;
  uint64_t event_seq_ = 0;
  int64_t now_ = 0;
  int64_t steps_ = 0;

  std::vector<LogEntry> log_;
  ir::ExceptionTypeId execution_exception_ = ir::kInvalidId;

  bool hit_time_limit_ = false;
  bool hit_step_limit_ = false;
  bool hit_wall_budget_ = false;
  bool stall_fired_ = false;
  std::vector<int32_t> crashed_node_indices_;
  bool wall_limited_ = false;
  std::chrono::steady_clock::time_point wall_deadline_;
  uint64_t events_processed_ = 0;
  bool ran_ = false;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace anduril::interp

#endif  // ANDURIL_SRC_INTERP_SIMULATOR_H_
