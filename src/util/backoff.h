// Bounded exponential backoff with deterministic jitter.
//
// The explorer retries *transient* round failures (runs killed by the host
// wall-clock watchdog, i.e. environmental slowness rather than a
// fault-induced outcome) with delays that grow exponentially up to a cap.
// Jitter is drawn from the repo's deterministic Rng so a search seeded the
// same way consumes the same jitter stream; the number of draws is exposed
// so checkpoint/resume can restore the stream position exactly.

#ifndef ANDURIL_SRC_UTIL_BACKOFF_H_
#define ANDURIL_SRC_UTIL_BACKOFF_H_

#include <cstdint>

#include "src/util/rng.h"

namespace anduril {

class ExponentialBackoff {
 public:
  struct Options {
    int64_t initial_delay_ms = 5;
    double multiplier = 2.0;
    int64_t max_delay_ms = 250;
    int max_retries = 2;      // per Reset() scope (one explorer round)
    double jitter = 0.2;      // +/- fraction of the base delay
  };

  ExponentialBackoff(const Options& options, uint64_t seed)
      : options_(options), rng_(seed) {}

  // True while the current scope has retry budget left.
  bool ShouldRetry() const { return attempt_ < options_.max_retries; }

  // Delay before the next retry; advances the attempt counter and consumes
  // one jitter draw from the stream.
  int64_t NextDelayMs();

  // Starts a new retry scope (next round): the attempt counter restarts but
  // the jitter stream keeps advancing — the stream position is global.
  void Reset() { attempt_ = 0; }

  int attempt() const { return attempt_; }

  // --- Checkpoint support ----------------------------------------------------
  // Total jitter draws consumed since construction.
  uint64_t draws() const { return draws_; }
  // Replays `draws` jitter draws so a resumed search continues the stream
  // where the interrupted one left off.
  void FastForward(uint64_t draws);

 private:
  Options options_;
  Rng rng_;
  int attempt_ = 0;
  uint64_t draws_ = 0;
};

}  // namespace anduril

#endif  // ANDURIL_SRC_UTIL_BACKOFF_H_
