#include "src/util/check.h"

#include <cstdio>
#include <cstdlib>

namespace anduril {

void CheckFailed(const char* file, int line, const char* expr, const std::string& message) {
  std::fprintf(stderr, "ANDURIL_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               message.empty() ? "" : " — ", message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace anduril
