#include "src/util/thread_pool.h"

#include <algorithm>
#include <stdexcept>

namespace anduril {

ThreadPool::ThreadPool(int num_threads, size_t queue_bound) : queue_bound_(queue_bound) {
  int count = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this](std::stop_token stop) { WorkerLoop(stop); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  // request_stop wakes idle workers via the stop_token; workers still drain
  // the queue before exiting so futures of accepted tasks always complete.
  for (std::jthread& worker : workers_) {
    worker.request_stop();
  }
  work_available_.notify_all();
  space_available_.notify_all();
  // jthread joins on destruction (workers_ is the last member destroyed).
}

size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

void ThreadPool::Enqueue(std::function<void()> fn) {
  std::unique_lock<std::mutex> lock(mu_);
  if (queue_bound_ > 0) {
    space_available_.wait(lock,
                          [this] { return shutting_down_ || queue_.size() < queue_bound_; });
  }
  if (shutting_down_) {
    throw std::runtime_error("ThreadPool::Submit after shutdown");
  }
  queue_.push_back(std::move(fn));
  ++in_flight_;
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop(std::stop_token stop) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock, stop, [this] { return !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop requested and nothing left to drain
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      space_available_.notify_one();
    }
    task();  // packaged_task captures exceptions into its future
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

}  // namespace anduril
