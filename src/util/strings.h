// Small string helpers shared by the log parser, IR dumper, and benches.

#ifndef ANDURIL_SRC_UTIL_STRINGS_H_
#define ANDURIL_SRC_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace anduril {

// Splits `text` on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view text, char sep);

// Splits into at most `max_pieces` pieces; the last piece keeps the rest.
std::vector<std::string> SplitN(std::string_view text, char sep, size_t max_pieces);

// Joins `pieces` with `sep`.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);
bool Contains(std::string_view text, std::string_view needle);

// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

// Replaces every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view text, std::string_view from, std::string_view to);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Renders 1234567 as "1,234,567" for bench tables.
std::string WithThousandsSeparators(int64_t value);

}  // namespace anduril

#endif  // ANDURIL_SRC_UTIL_STRINGS_H_
