// FNV-1a streaming hasher shared by the checkpoint chain-signature hash, the
// program fingerprint, and the service queue manifest's integrity hash.
//
// The constants match the values the checkpoint code has always used, so
// refactoring onto this helper keeps every previously-written checkpoint and
// fault-signature file verifiable.

#ifndef ANDURIL_SRC_UTIL_HASH_H_
#define ANDURIL_SRC_UTIL_HASH_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace anduril {

class Fnv1aHasher {
 public:
  static constexpr uint64_t kOffsetBasis = 1469598103934665603ull;
  static constexpr uint64_t kPrime = 1099511628211ull;

  void MixByte(unsigned char c) {
    hash_ ^= c;
    hash_ *= kPrime;
  }

  // Little-endian byte order, fixed 8 bytes per integer: the stream is
  // position-dependent, so adjacent fields cannot alias each other.
  void MixInt(int64_t value) {
    for (int shift = 0; shift < 64; shift += 8) {
      MixByte(static_cast<unsigned char>((static_cast<uint64_t>(value) >> shift) & 0xFF));
    }
  }

  // Raw bytes, no terminator: for pre-delimited payloads (whole documents).
  void MixBytes(std::string_view text) {
    for (unsigned char c : std::string_view(text)) {
      MixByte(c);
    }
  }

  // String with a 0xFF terminator byte so "ab","c" != "a","bc".
  void MixStr(std::string_view text) {
    MixBytes(text);
    MixByte(0xFF);
  }

  // Field separator for composite records.
  void MixSeparator() { MixByte(0xFE); }

  uint64_t hash() const { return hash_; }

 private:
  uint64_t hash_ = kOffsetBasis;
};

// One-shot convenience over a whole document.
inline uint64_t Fnv1a(std::string_view text) {
  Fnv1aHasher hasher;
  hasher.MixBytes(text);
  return hasher.hash();
}

}  // namespace anduril

#endif  // ANDURIL_SRC_UTIL_HASH_H_
