// Minimal JSON value type with a parser and serializer, for the explorer's
// checkpoint files. Supports objects, arrays, strings (with the standard
// escapes), 64-bit integers, doubles, booleans, and null — deliberately no
// more. Object keys keep insertion order so serialization is byte-stable.

#ifndef ANDURIL_SRC_UTIL_JSON_H_
#define ANDURIL_SRC_UTIL_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace anduril {

class JsonValue {
 public:
  enum class Type : uint8_t { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  JsonValue() = default;
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool value);
  static JsonValue Int(int64_t value);
  static JsonValue Double(double value);
  static JsonValue Str(std::string value);
  static JsonValue Array();
  static JsonValue Object();

  // Parses `text`; returns a kNull value and sets *error on failure.
  static JsonValue Parse(const std::string& text, std::string* error);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }

  bool as_bool(bool fallback = false) const;
  int64_t as_int(int64_t fallback = 0) const;
  double as_double(double fallback = 0.0) const;
  const std::string& as_string() const;

  // --- Arrays ----------------------------------------------------------------
  void Append(JsonValue value);
  const std::vector<JsonValue>& items() const { return items_; }

  // --- Objects ---------------------------------------------------------------
  void Set(const std::string& key, JsonValue value);
  // Returns nullptr when absent (or not an object).
  const JsonValue* Find(const std::string& key) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const { return members_; }

  // Serializes with 2-space indentation and a trailing newline at top level.
  std::string Dump() const;

 private:
  void DumpTo(std::string* out, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace anduril

#endif  // ANDURIL_SRC_UTIL_JSON_H_
