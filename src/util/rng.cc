#include "src/util/rng.h"

#include "src/util/check.h"

namespace anduril {

uint64_t Rng::NextBelow(uint64_t bound) {
  ANDURIL_CHECK_GT(bound, 0u);
  // Lemire's nearly-divisionless method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  ANDURIL_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

}  // namespace anduril
