// Bump-pointer arena for per-round scratch that is reused across rounds.
//
// The explorer's incremental priority engine allocates its round-local
// work lists (dirty candidate sets, popped heap entries) here: blocks are
// grabbed from the system allocator once, then Reset() rewinds the bump
// pointer so the next round reuses the same memory with no free/malloc
// traffic. Allocation never constructs — only trivially-copyable value
// types may live in an arena.

#ifndef ANDURIL_SRC_UTIL_ARENA_H_
#define ANDURIL_SRC_UTIL_ARENA_H_

#include <cstddef>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

namespace anduril {

class Arena {
 public:
  explicit Arena(size_t initial_block_bytes = 1 << 16)
      : min_block_bytes_(initial_block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Raw storage for `count` Ts, aligned; uninitialized. Valid until Reset().
  template <typename T>
  T* Allocate(size_t count) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "arena storage is never constructed or destroyed");
    return static_cast<T*>(AllocateBytes(count * sizeof(T), alignof(T)));
  }

  // Rewinds every block; previously returned pointers become invalid but the
  // underlying memory stays owned and is handed out again.
  void Reset() {
    for (Block& block : blocks_) {
      block.used = 0;
    }
    current_ = 0;
  }

  // Total bytes owned (for tests / introspection).
  size_t capacity_bytes() const {
    size_t total = 0;
    for (const Block& block : blocks_) {
      total += block.size;
    }
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
    size_t used = 0;
  };

  void* AllocateBytes(size_t bytes, size_t align) {
    while (true) {
      while (current_ < blocks_.size()) {
        Block& block = blocks_[current_];
        uintptr_t base = reinterpret_cast<uintptr_t>(block.data.get());
        size_t offset =
            ((base + block.used + align - 1) & ~static_cast<uintptr_t>(align - 1)) - base;
        if (offset + bytes <= block.size) {
          block.used = offset + bytes;
          return block.data.get() + offset;
        }
        ++current_;
      }
      size_t size = min_block_bytes_;
      while (size < bytes + align) {
        size *= 2;
      }
      Block block;
      block.data = std::make_unique<char[]>(size);
      block.size = size;
      blocks_.push_back(std::move(block));
      // Loop again: the fresh block is guaranteed to fit bytes + alignment.
    }
  }

  size_t min_block_bytes_;
  std::vector<Block> blocks_;
  size_t current_ = 0;
};

// Growable array of a trivially-copyable T backed by an Arena. push_back
// amortizes by doubling into a fresh arena span (the old span is simply
// abandoned until the next Reset — arenas never free).
template <typename T>
class ArenaVec {
 public:
  explicit ArenaVec(Arena* arena) : arena_(arena) {}

  void push_back(T value) {
    if (size_ == capacity_) {
      Grow();
    }
    data_[size_++] = value;
  }

  void clear() { size_ = 0; }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  void Grow() {
    size_t next = capacity_ == 0 ? 64 : capacity_ * 2;
    T* grown = arena_->Allocate<T>(next);
    if (size_ > 0) {
      std::memcpy(grown, data_, size_ * sizeof(T));
    }
    data_ = grown;
    capacity_ = next;
  }

  Arena* arena_;
  T* data_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

}  // namespace anduril

#endif  // ANDURIL_SRC_UTIL_ARENA_H_
