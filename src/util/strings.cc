#include "src/util/strings.h"

#include <cstdarg>
#include <cstdio>

#include "src/util/check.h"

namespace anduril {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(text.substr(start));
      return pieces;
    }
    pieces.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitN(std::string_view text, char sep, size_t max_pieces) {
  ANDURIL_CHECK_GE(max_pieces, 1u);
  std::vector<std::string> pieces;
  size_t start = 0;
  while (pieces.size() + 1 < max_pieces) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      break;
    }
    pieces.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  pieces.emplace_back(text.substr(start));
  return pieces;
}

std::string Join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) {
      out.append(sep);
    }
    out.append(pieces[i]);
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

bool Contains(std::string_view text, std::string_view needle) {
  return text.find(needle) != std::string_view::npos;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && (text[begin] == ' ' || text[begin] == '\t' || text[begin] == '\n' ||
                         text[begin] == '\r')) {
    ++begin;
  }
  while (end > begin && (text[end - 1] == ' ' || text[end - 1] == '\t' ||
                         text[end - 1] == '\n' || text[end - 1] == '\r')) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string ReplaceAll(std::string_view text, std::string_view from, std::string_view to) {
  ANDURIL_CHECK(!from.empty());
  std::string out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(text.substr(start));
      return out;
    }
    out.append(text.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  ANDURIL_CHECK_GE(needed, 0);
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string WithThousandsSeparators(int64_t value) {
  std::string digits = std::to_string(value < 0 ? -value : value);
  std::string out;
  if (value < 0) {
    out.push_back('-');
  }
  size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  out.append(digits.substr(0, lead));
  for (size_t i = lead; i < digits.size(); i += 3) {
    out.push_back(',');
    out.append(digits.substr(i, 3));
  }
  return out;
}

}  // namespace anduril
