#include "src/util/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace anduril {
namespace {

struct Parser {
  const std::string& text;
  size_t pos = 0;
  std::string error;

  bool Fail(const std::string& message) {
    if (error.empty()) {
      error = message + " at offset " + std::to_string(pos);
    }
    return false;
  }

  void SkipSpace() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return Fail(std::string("expected '") + c + "'");
  }

  bool Literal(const char* literal) {
    size_t len = std::char_traits<char>::length(literal);
    if (text.compare(pos, len, literal) == 0) {
      pos += len;
      return true;
    }
    return Fail(std::string("expected ") + literal);
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) {
      return false;
    }
    out->clear();
    while (pos < text.size()) {
      char c = text[pos++];
      if (c == '"') {
        return true;
      }
      if (c == '\\') {
        if (pos >= text.size()) {
          break;
        }
        char esc = text[pos++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos + 4 > text.size()) {
              return Fail("truncated \\u escape");
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
              else return Fail("bad \\u escape");
            }
            // Checkpoints only ever contain ASCII; encode BMP code points
            // as UTF-8 without surrogate-pair handling.
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Fail("unknown escape");
        }
        continue;
      }
      out->push_back(c);
    }
    return Fail("unterminated string");
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos >= text.size()) {
      return Fail("unexpected end of input");
    }
    char c = text[pos];
    if (c == '{') {
      ++pos;
      *out = JsonValue::Object();
      SkipSpace();
      if (pos < text.size() && text[pos] == '}') {
        ++pos;
        return true;
      }
      for (;;) {
        std::string key;
        SkipSpace();
        if (!ParseString(&key)) {
          return false;
        }
        if (!Consume(':')) {
          return false;
        }
        JsonValue value;
        if (!ParseValue(&value)) {
          return false;
        }
        out->Set(key, std::move(value));
        SkipSpace();
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          continue;
        }
        return Consume('}');
      }
    }
    if (c == '[') {
      ++pos;
      *out = JsonValue::Array();
      SkipSpace();
      if (pos < text.size() && text[pos] == ']') {
        ++pos;
        return true;
      }
      for (;;) {
        JsonValue value;
        if (!ParseValue(&value)) {
          return false;
        }
        out->Append(std::move(value));
        SkipSpace();
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          continue;
        }
        return Consume(']');
      }
    }
    if (c == '"') {
      std::string value;
      if (!ParseString(&value)) {
        return false;
      }
      *out = JsonValue::Str(std::move(value));
      return true;
    }
    if (c == 't') {
      if (!Literal("true")) return false;
      *out = JsonValue::Bool(true);
      return true;
    }
    if (c == 'f') {
      if (!Literal("false")) return false;
      *out = JsonValue::Bool(false);
      return true;
    }
    if (c == 'n') {
      if (!Literal("null")) return false;
      *out = JsonValue::Null();
      return true;
    }
    // Number: integer when it round-trips as int64 with no '.', 'e', 'E'.
    size_t start = pos;
    if (c == '-') ++pos;
    bool is_double = false;
    while (pos < text.size()) {
      char d = text[pos];
      if (std::isdigit(static_cast<unsigned char>(d))) {
        ++pos;
      } else if (d == '.' || d == 'e' || d == 'E' || d == '+' || d == '-') {
        is_double = true;
        ++pos;
      } else {
        break;
      }
    }
    if (pos == start) {
      return Fail("unexpected character");
    }
    std::string token = text.substr(start, pos - start);
    if (!is_double) {
      *out = JsonValue::Int(std::strtoll(token.c_str(), nullptr, 10));
    } else {
      *out = JsonValue::Double(std::strtod(token.c_str(), nullptr));
    }
    return true;
  }
};

void EscapeInto(const std::string& value, std::string* out) {
  out->push_back('"');
  for (char c : value) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

JsonValue JsonValue::Bool(bool value) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::Int(int64_t value) {
  JsonValue v;
  v.type_ = Type::kInt;
  v.int_ = value;
  return v;
}

JsonValue JsonValue::Double(double value) {
  JsonValue v;
  v.type_ = Type::kDouble;
  v.double_ = value;
  return v;
}

JsonValue JsonValue::Str(std::string value) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

JsonValue JsonValue::Parse(const std::string& text, std::string* error) {
  Parser parser{text};
  JsonValue value;
  if (!parser.ParseValue(&value)) {
    if (error != nullptr) {
      *error = parser.error;
    }
    return JsonValue();
  }
  parser.SkipSpace();
  if (parser.pos != text.size()) {
    if (error != nullptr) {
      *error = "trailing content at offset " + std::to_string(parser.pos);
    }
    return JsonValue();
  }
  if (error != nullptr) {
    error->clear();
  }
  return value;
}

bool JsonValue::as_bool(bool fallback) const {
  return type_ == Type::kBool ? bool_ : fallback;
}

int64_t JsonValue::as_int(int64_t fallback) const {
  if (type_ == Type::kInt) {
    return int_;
  }
  if (type_ == Type::kDouble) {
    return static_cast<int64_t>(double_);
  }
  return fallback;
}

double JsonValue::as_double(double fallback) const {
  if (type_ == Type::kDouble) {
    return double_;
  }
  if (type_ == Type::kInt) {
    return static_cast<double>(int_);
  }
  return fallback;
}

const std::string& JsonValue::as_string() const {
  static const std::string kEmpty;
  return type_ == Type::kString ? string_ : kEmpty;
}

void JsonValue::Append(JsonValue value) {
  type_ = Type::kArray;
  items_.push_back(std::move(value));
}

void JsonValue::Set(const std::string& key, JsonValue value) {
  type_ = Type::kObject;
  for (auto& member : members_) {
    if (member.first == key) {
      member.second = std::move(value);
      return;
    }
  }
  members_.emplace_back(key, std::move(value));
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& member : members_) {
    if (member.first == key) {
      return &member.second;
    }
  }
  return nullptr;
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(&out, 0);
  out.push_back('\n');
  return out;
}

void JsonValue::DumpTo(std::string* out, int depth) const {
  auto indent = [out](int n) { out->append(static_cast<size_t>(n) * 2, ' '); };
  switch (type_) {
    case Type::kNull:
      *out += "null";
      return;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Type::kInt:
      *out += std::to_string(int_);
      return;
    case Type::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", double_);
      *out += buf;
      return;
    }
    case Type::kString:
      EscapeInto(string_, out);
      return;
    case Type::kArray: {
      if (items_.empty()) {
        *out += "[]";
        return;
      }
      *out += "[\n";
      for (size_t i = 0; i < items_.size(); ++i) {
        indent(depth + 1);
        items_[i].DumpTo(out, depth + 1);
        *out += i + 1 < items_.size() ? ",\n" : "\n";
      }
      indent(depth);
      *out += "]";
      return;
    }
    case Type::kObject: {
      if (members_.empty()) {
        *out += "{}";
        return;
      }
      *out += "{\n";
      for (size_t i = 0; i < members_.size(); ++i) {
        indent(depth + 1);
        EscapeInto(members_[i].first, out);
        *out += ": ";
        members_[i].second.DumpTo(out, depth + 1);
        *out += i + 1 < members_.size() ? ",\n" : "\n";
      }
      indent(depth);
      *out += "}";
      return;
    }
  }
}

}  // namespace anduril
