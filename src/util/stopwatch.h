// Wall-clock stopwatch used by the explorer and the bench harnesses to report
// decision latency / round initialization time (paper Tables 4 and 8).

#ifndef ANDURIL_SRC_UTIL_STOPWATCH_H_
#define ANDURIL_SRC_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace anduril {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start_).count();
  }

  double ElapsedMicros() const { return static_cast<double>(ElapsedNanos()) / 1e3; }
  double ElapsedMillis() const { return static_cast<double>(ElapsedNanos()) / 1e6; }
  double ElapsedSeconds() const { return static_cast<double>(ElapsedNanos()) / 1e9; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace anduril

#endif  // ANDURIL_SRC_UTIL_STOPWATCH_H_
