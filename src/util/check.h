// Lightweight assertion macros used across anduril.
//
// ANDURIL_CHECK is always on (also in release builds): the tool is a research
// artifact whose correctness matters more than the last few percent of speed,
// and a silent invariant violation in the explorer would corrupt experiment
// results without any visible symptom.

#ifndef ANDURIL_SRC_UTIL_CHECK_H_
#define ANDURIL_SRC_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace anduril {

[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);

namespace internal {

// Stream-style message collector so call sites can write
//   ANDURIL_CHECK(x > 0) << "x was " << x;
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  [[noreturn]] ~CheckMessageBuilder() { CheckFailed(file_, line_, expr_, stream_.str()); }

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace anduril

#define ANDURIL_CHECK(cond)                                               \
  if (cond) {                                                             \
  } else /* NOLINT */                                                     \
    ::anduril::internal::CheckMessageBuilder(__FILE__, __LINE__, #cond)

#define ANDURIL_CHECK_EQ(a, b) ANDURIL_CHECK((a) == (b))
#define ANDURIL_CHECK_NE(a, b) ANDURIL_CHECK((a) != (b))
#define ANDURIL_CHECK_LT(a, b) ANDURIL_CHECK((a) < (b))
#define ANDURIL_CHECK_LE(a, b) ANDURIL_CHECK((a) <= (b))
#define ANDURIL_CHECK_GT(a, b) ANDURIL_CHECK((a) > (b))
#define ANDURIL_CHECK_GE(a, b) ANDURIL_CHECK((a) >= (b))

#define ANDURIL_UNREACHABLE() \
  ::anduril::internal::CheckMessageBuilder(__FILE__, __LINE__, "unreachable")

#endif  // ANDURIL_SRC_UTIL_CHECK_H_
