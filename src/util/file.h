// Small file helpers shared by the checkpoint, signature, and service
// layers: whole-file reads and atomic whole-file writes.
//
// WriteFileAtomic follows the repo's crash-safety convention: write to a
// sibling "<path>.tmp" and rename() over the destination, so a reader (or a
// process killed mid-write) only ever observes the old bytes or the new
// bytes, never a torn file.

#ifndef ANDURIL_SRC_UTIL_FILE_H_
#define ANDURIL_SRC_UTIL_FILE_H_

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace anduril {

inline bool ReadFileToString(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

inline bool WriteFileAtomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    out << content;
    out.close();
    if (!out) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace anduril

#endif  // ANDURIL_SRC_UTIL_FILE_H_
