// Deterministic pseudo-random number generation.
//
// Every source of randomness in the simulator (scheduling jitter, message
// latency, noise log emission) draws from an explicitly seeded Rng so that a
// run is reproducible from (program, workload, seed, injection plan) alone.
// This mirrors the paper's requirement that a successful search emits a
// script that *deterministically* re-triggers the failure (§3 step 4.a).

#ifndef ANDURIL_SRC_UTIL_RNG_H_
#define ANDURIL_SRC_UTIL_RNG_H_

#include <cstdint>

namespace anduril {

// SplitMix64: used to expand a user seed into xoshiro state.
// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
// generators" (OOPSLA 2014).
inline uint64_t SplitMix64Next(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** by Blackman & Vigna. Small, fast, high quality; good enough
// for simulation scheduling (not cryptography).
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) {
      word = SplitMix64Next(&sm);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0. Uses Lemire-style rejection to
  // avoid modulo bias.
  uint64_t NextBelow(uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // True with probability p (clamped to [0,1]).
  bool NextBool(double p);

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace anduril

#endif  // ANDURIL_SRC_UTIL_RNG_H_
