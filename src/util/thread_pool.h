// Fixed-size thread pool used by the parallel exploration engine.
//
// Design goals, in order:
//   1. Determinism support: the pool never reorders *results* — callers
//      submit tasks that return futures, and merge logic is written against
//      submission order, so a pool of any size yields the same outcome as a
//      serial loop (the explorer's headline invariant).
//   2. Bounded memory: the task queue has a configurable bound; Submit
//      blocks (backpressure) instead of growing the queue without limit.
//   3. Clean shutdown: destruction drains already-queued tasks, then joins.
//      std::jthread's stop_token wakes idle workers; tasks submitted after
//      shutdown began are rejected by throwing std::runtime_error.
//
// Exceptions thrown by a task propagate through the returned future
// (std::packaged_task semantics), never into the worker loop.

#ifndef ANDURIL_SRC_UTIL_THREAD_POOL_H_
#define ANDURIL_SRC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace anduril {

class ThreadPool {
 public:
  // `num_threads` workers (clamped to >= 1). `queue_bound` caps the number
  // of not-yet-started tasks; 0 means unbounded.
  explicit ThreadPool(int num_threads, size_t queue_bound = 0);

  // Drains queued tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Number of tasks accepted but not yet finished.
  size_t pending() const;

  // Schedules `fn` and returns a future for its result. Blocks while the
  // queue is at its bound. Throws std::runtime_error after shutdown began.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using Result = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<Result()>>(std::forward<Fn>(fn));
    std::future<Result> future = task->get_future();
    Enqueue([task]() { (*task)(); });
    return future;
  }

  // Blocks until every accepted task has finished. New submissions stay
  // allowed; Wait returns once the pool is momentarily idle.
  void Wait();

 private:
  void Enqueue(std::function<void()> fn);
  void WorkerLoop(std::stop_token stop);

  mutable std::mutex mu_;
  std::condition_variable_any work_available_;
  std::condition_variable_any space_available_;
  std::condition_variable_any all_done_;
  std::deque<std::function<void()>> queue_;
  size_t queue_bound_ = 0;
  size_t in_flight_ = 0;  // queued + currently executing
  bool shutting_down_ = false;
  std::vector<std::jthread> workers_;  // last member: joins before state dies
};

}  // namespace anduril

#endif  // ANDURIL_SRC_UTIL_THREAD_POOL_H_
