#include "src/util/backoff.h"

#include <algorithm>

namespace anduril {

int64_t ExponentialBackoff::NextDelayMs() {
  double base = static_cast<double>(options_.initial_delay_ms);
  for (int i = 0; i < attempt_; ++i) {
    base *= options_.multiplier;
  }
  base = std::min(base, static_cast<double>(options_.max_delay_ms));
  ++attempt_;
  // Jitter in [-jitter, +jitter] * base, from the deterministic stream.
  double spread = rng_.NextDouble() * 2.0 - 1.0;
  ++draws_;
  int64_t delay = static_cast<int64_t>(base * (1.0 + options_.jitter * spread));
  return std::max<int64_t>(delay, 0);
}

void ExponentialBackoff::FastForward(uint64_t draws) {
  for (uint64_t i = 0; i < draws; ++i) {
    rng_.NextDouble();
  }
  draws_ += draws;
}

}  // namespace anduril
