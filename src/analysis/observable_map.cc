#include "src/analysis/observable_map.h"

#include "src/logdiff/parser.h"
#include "src/util/check.h"
#include "src/util/strings.h"

namespace anduril::analysis {

namespace {

constexpr const char kUncaughtPrefix[] = "Uncaught exception terminating thread:";
constexpr const char kExcMarker[] = " [exc=";

}  // namespace

std::string ObservableMapper::TemplateKey(const ir::Program& program, ir::LogTemplateId tmpl) {
  const ir::LogTemplate& t = program.log_template(tmpl);
  // "{}" placeholders render as digit runs, which sanitize to '#'.
  std::string body = logdiff::Sanitize(ReplaceAll(t.text, "{}", "0"));
  return StrFormat("%s|%s|%s", ir::LogLevelName(t.level), t.logger.c_str(), body.c_str());
}

ObservableMapper::ObservableMapper(const ir::Program& program) : program_(program) {
  ANDURIL_CHECK(program.finalized());
  for (size_t m = 0; m < program.method_count(); ++m) {
    const ir::Method& method = program.method(static_cast<ir::MethodId>(m));
    for (ir::StmtId s = 0; s < static_cast<ir::StmtId>(method.stmts.size()); ++s) {
      const ir::Stmt& stmt = method.stmt(s);
      if (stmt.kind == ir::StmtKind::kLog) {
        template_index_[TemplateKey(program, stmt.log_template)].push_back(
            ir::GlobalStmt{method.id, s});
      }
    }
  }
  for (const ir::FaultSite& site : program.fault_sites()) {
    site_index_[logdiff::Sanitize(site.name)].push_back(site.id);
  }
}

std::vector<CausalSink> ObservableMapper::Resolve(const std::vector<std::string>& keys) const {
  std::vector<CausalSink> sinks;
  for (size_t k = 0; k < keys.size(); ++k) {
    const std::string& key = keys[k];
    // Split "LEVEL|logger|message".
    std::vector<std::string> parts = SplitN(key, '|', 3);
    if (parts.size() != 3) {
      continue;
    }
    const std::string& message = parts[2];

    if (StartsWith(message, kUncaughtPrefix)) {
      // Parse the embedded "exc=Type at Site" (site name is sanitized, as the
      // key itself is sanitized text).
      size_t marker = message.find(kExcMarker);
      if (marker == std::string::npos) {
        continue;
      }
      size_t start = marker + sizeof(kExcMarker) - 1;
      size_t at = message.find(" at ", start);
      if (at == std::string::npos) {
        continue;
      }
      std::string type_name = message.substr(start, at - start);
      size_t site_start = at + 4;
      size_t site_end = message.find_first_of(";]", site_start);
      if (site_end == std::string::npos) {
        continue;
      }
      std::string site_name = message.substr(site_start, site_end - site_start);
      auto it = site_index_.find(site_name);
      if (it == site_index_.end()) {
        continue;
      }
      ir::ExceptionTypeId type = program_.FindException(type_name);
      for (ir::FaultSiteId site : it->second) {
        CausalSink sink;
        sink.observable = static_cast<int32_t>(k);
        sink.direct_site = site;
        // Use the printed type only if this site can actually throw it.
        const ir::FaultSite& fault_site = program_.fault_site(site);
        const ir::Stmt& stmt =
            program_.method(fault_site.location.method).stmt(fault_site.location.stmt);
        if (type != ir::kInvalidId && fault_site.kind == ir::FaultSiteKind::kExternal) {
          for (ir::ExceptionTypeId throwable : stmt.throwable_types) {
            if (throwable == type) {
              sink.direct_type = type;
              break;
            }
          }
        }
        sinks.push_back(sink);
      }
      continue;
    }

    // Strip a printed-exception suffix for template matching.
    std::string lookup = key;
    size_t marker = message.find(kExcMarker);
    if (marker != std::string::npos) {
      size_t prefix_len = parts[0].size() + 1 + parts[1].size() + 1;
      lookup = key.substr(0, prefix_len + marker);
    }
    auto it = template_index_.find(lookup);
    if (it == template_index_.end()) {
      continue;
    }
    for (const ir::GlobalStmt& log_stmt : it->second) {
      CausalSink sink;
      sink.observable = static_cast<int32_t>(k);
      sink.log_stmt = log_stmt;
      sinks.push_back(sink);
    }
  }
  return sinks;
}

}  // namespace anduril::analysis
