// Per-method control-flow graph over the anduril IR statement tree.
//
// One CFG node per statement, plus synthetic entry and exit nodes. Normal
// edges follow the structured semantics of the tree (block order, branch
// arms, while back-edges, break-to-loop-exit, return-to-exit); exceptional
// edges go from every potentially-throwing statement to the catch-handler
// block that would receive the exception — or to exit when the type escapes
// the method. A `while (true)` loop has no fall-through exit edge, so code
// after it is reachable only through Break.
//
// The exceptional edges use the same clause-matching rule as the simulator:
// a clause catches a thrown type T when T is-a clause-type (definitely
// caught — propagation stops), and *may* catch it when clause-type is-a T
// (the static type is a supertype of the clause; the runtime type could be
// either). For may-catch clauses the CFG keeps both the handler edge and the
// continued outward propagation, which keeps reachability conservative.

#ifndef ANDURIL_SRC_ANALYSIS_CFG_H_
#define ANDURIL_SRC_ANALYSIS_CFG_H_

#include <cstdint>
#include <vector>

#include "src/analysis/exception_flow.h"
#include "src/ir/program.h"

namespace anduril::analysis {

// Node ids 0..stmt_count-1 are the method's statements (node id == StmtId);
// entry() and exit() follow.
using CfgNodeId = int32_t;

class MethodCfg {
 public:
  // `flow` supplies callee escape summaries for Invoke exceptional edges;
  // when null, Invoke statements get no exceptional edges (intra-procedural
  // view).
  MethodCfg(const ir::Program& program, ir::MethodId method,
            const ExceptionFlow* flow = nullptr);

  ir::MethodId method() const { return method_; }
  size_t node_count() const { return succs_.size(); }
  CfgNodeId entry() const { return static_cast<CfgNodeId>(node_count()) - 2; }
  CfgNodeId exit() const { return static_cast<CfgNodeId>(node_count()) - 1; }

  const std::vector<CfgNodeId>& succs(CfgNodeId node) const {
    return succs_[static_cast<size_t>(node)];
  }
  const std::vector<CfgNodeId>& preds(CfgNodeId node) const {
    return preds_[static_cast<size_t>(node)];
  }

  // Statements reachable from entry along any edge path (entry/exit nodes
  // included in the vector, always true for entry). Computed once during
  // construction — reachability is the CFG's most common query.
  const std::vector<bool>& reachable() const { return reachable_; }
  bool StmtReachable(ir::StmtId stmt) const {
    return reachable_[static_cast<size_t>(stmt)];
  }

 private:
  void AddEdge(CfgNodeId from, CfgNodeId to);
  // Node receiving control after `stmt` completes normally.
  CfgNodeId AfterStmt(const ir::Method& method, ir::StmtId stmt) const;
  // Exceptional edges for a thrown type at `stmt`: handler blocks of
  // matching enclosing clauses, or exit when the type escapes.
  void AddThrowEdges(const ir::Method& method, ir::StmtId stmt,
                     ir::ExceptionTypeId type);
  void BuildStmtEdges(const ir::Method& method, ir::StmtId stmt);
  void ComputeReachability();

  const ir::Program& program_;
  const ExceptionFlow* flow_;
  ir::MethodId method_;
  std::vector<std::vector<CfgNodeId>> succs_;
  std::vector<std::vector<CfgNodeId>> preds_;
  std::vector<bool> reachable_;
};

}  // namespace anduril::analysis

#endif  // ANDURIL_SRC_ANALYSIS_CFG_H_
