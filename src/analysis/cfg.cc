#include "src/analysis/cfg.h"

#include <algorithm>

#include "src/util/check.h"

namespace anduril::analysis {

MethodCfg::MethodCfg(const ir::Program& program, ir::MethodId method,
                     const ExceptionFlow* flow)
    : program_(program), flow_(flow), method_(method) {
  ANDURIL_CHECK(program.finalized());
  const ir::Method& m = program.method(method);
  succs_.resize(m.stmts.size() + 2);
  preds_.resize(m.stmts.size() + 2);
  AddEdge(entry(), 0);  // statement 0 is the root block
  for (ir::StmtId s = 0; s < static_cast<ir::StmtId>(m.stmts.size()); ++s) {
    BuildStmtEdges(m, s);
  }
  ComputeReachability();
}

void MethodCfg::AddEdge(CfgNodeId from, CfgNodeId to) {
  std::vector<CfgNodeId>& out = succs_[static_cast<size_t>(from)];
  if (std::find(out.begin(), out.end(), to) != out.end()) {
    return;  // dedup: several escape origins can share a handler target
  }
  out.push_back(to);
  preds_[static_cast<size_t>(to)].push_back(from);
}

CfgNodeId MethodCfg::AfterStmt(const ir::Method& method, ir::StmtId stmt) const {
  if (stmt == 0) {
    return exit();  // completing the root block ends the method
  }
  const ir::Stmt& parent = method.stmt(method.stmt(stmt).parent);
  switch (parent.kind) {
    case ir::StmtKind::kBlock: {
      auto it = std::find(parent.children.begin(), parent.children.end(), stmt);
      ANDURIL_CHECK(it != parent.children.end());
      if (it + 1 != parent.children.end()) {
        return *(it + 1);
      }
      return AfterStmt(method, method.stmt(stmt).parent);
    }
    case ir::StmtKind::kWhile:
      return method.stmt(stmt).parent;  // loop back to the While header
    case ir::StmtKind::kIf:
    case ir::StmtKind::kTryCatch:
      return AfterStmt(method, method.stmt(stmt).parent);
    default:
      ANDURIL_CHECK(false) << "non-structured parent kind";
      return exit();
  }
}

void MethodCfg::AddThrowEdges(const ir::Method& method, ir::StmtId stmt,
                              ir::ExceptionTypeId type) {
  ir::StmtId cursor = stmt;
  while (cursor != 0) {
    ir::StmtId parent_id = method.stmt(cursor).parent;
    const ir::Stmt& parent = method.stmt(parent_id);
    // Only the try block is protected by the clauses; an exception raised
    // inside a catch block propagates past its own TryCatch.
    if (parent.kind == ir::StmtKind::kTryCatch && parent.try_block == cursor) {
      for (const ir::CatchClause& clause : parent.catches) {
        if (program_.ExceptionIsA(type, clause.type)) {
          AddEdge(stmt, clause.block);
          return;  // definitely caught: propagation stops here
        }
        if (program_.ExceptionIsA(clause.type, type)) {
          AddEdge(stmt, clause.block);  // may catch; keep propagating
        }
      }
    }
    cursor = parent_id;
  }
  AddEdge(stmt, exit());  // escapes the method
}

void MethodCfg::BuildStmtEdges(const ir::Method& method, ir::StmtId stmt_id) {
  const ir::Stmt& stmt = method.stmt(stmt_id);
  switch (stmt.kind) {
    case ir::StmtKind::kBlock:
      AddEdge(stmt_id, stmt.children.empty() ? AfterStmt(method, stmt_id)
                                             : stmt.children.front());
      break;
    case ir::StmtKind::kNop:
    case ir::StmtKind::kAssign:
    case ir::StmtKind::kLog:
    case ir::StmtKind::kSignal:
    case ir::StmtKind::kSend:
    case ir::StmtKind::kSubmit:
    case ir::StmtKind::kSleep:
      AddEdge(stmt_id, AfterStmt(method, stmt_id));
      break;
    case ir::StmtKind::kIf:
      AddEdge(stmt_id, stmt.then_block);
      if (stmt.else_block != ir::kInvalidId) {
        AddEdge(stmt_id, stmt.else_block);
      } else if (!stmt.cond.IsTrue()) {
        AddEdge(stmt_id, AfterStmt(method, stmt_id));
      }
      break;
    case ir::StmtKind::kWhile:
      AddEdge(stmt_id, stmt.then_block);  // loop body
      if (!stmt.cond.IsTrue()) {
        AddEdge(stmt_id, AfterStmt(method, stmt_id));
      }
      // while (true) exits only through Break (or a thrown exception).
      break;
    case ir::StmtKind::kBreak: {
      ir::StmtId loop = method.stmt(stmt_id).parent;
      while (method.stmt(loop).kind != ir::StmtKind::kWhile) {
        loop = method.stmt(loop).parent;  // Finalize verified the loop exists
      }
      AddEdge(stmt_id, AfterStmt(method, loop));
      break;
    }
    case ir::StmtKind::kReturn:
      AddEdge(stmt_id, exit());
      break;
    case ir::StmtKind::kThrow: {
      ir::ExceptionTypeId type = stmt.exception_type;
      if (type == ir::kInvalidId) {
        // Rethrow: the static type is the enclosing clause's caught type.
        ir::StmtId cursor = stmt_id;
        while (type == ir::kInvalidId && cursor != 0) {
          ir::StmtId parent_id = method.stmt(cursor).parent;
          const ir::Stmt& parent = method.stmt(parent_id);
          if (parent.kind == ir::StmtKind::kTryCatch) {
            for (const ir::CatchClause& clause : parent.catches) {
              if (clause.block == cursor) {
                type = clause.type;
                break;
              }
            }
          }
          cursor = parent_id;
        }
        ANDURIL_CHECK_NE(type, ir::kInvalidId) << "rethrow outside catch";
      }
      AddThrowEdges(method, stmt_id, type);
      break;  // no normal successor
    }
    case ir::StmtKind::kExternalCall:
      AddEdge(stmt_id, AfterStmt(method, stmt_id));
      for (ir::ExceptionTypeId type : stmt.throwable_types) {
        AddThrowEdges(method, stmt_id, type);
      }
      break;
    case ir::StmtKind::kAwait:
      AddEdge(stmt_id, AfterStmt(method, stmt_id));
      if (stmt.exception_type != ir::kInvalidId) {
        AddThrowEdges(method, stmt_id, stmt.exception_type);
      }
      break;
    case ir::StmtKind::kFutureGet: {
      AddEdge(stmt_id, AfterStmt(method, stmt_id));
      // Task failures surface here as ExecutionException; a timeout throws
      // the declared type. Both are conservative: edges exist even when no
      // submitted task can actually fail.
      ir::ExceptionTypeId execution = program_.FindException("ExecutionException");
      if (execution != ir::kInvalidId) {
        AddThrowEdges(method, stmt_id, execution);
      }
      if (stmt.exception_type != ir::kInvalidId) {
        AddThrowEdges(method, stmt_id, stmt.exception_type);
      }
      break;
    }
    case ir::StmtKind::kInvoke: {
      AddEdge(stmt_id, AfterStmt(method, stmt_id));
      if (flow_ != nullptr) {
        for (const ThrowOrigin& origin : flow_->Escapes(stmt.callee)) {
          AddThrowEdges(method, stmt_id, origin.type);
        }
      }
      break;
    }
    case ir::StmtKind::kTryCatch:
      // Catch blocks are entered only via exceptional edges from inside the
      // try block.
      AddEdge(stmt_id, stmt.try_block);
      break;
  }
}

void MethodCfg::ComputeReachability() {
  reachable_.assign(node_count(), false);
  std::vector<CfgNodeId> worklist{entry()};
  reachable_[static_cast<size_t>(entry())] = true;
  while (!worklist.empty()) {
    CfgNodeId node = worklist.back();
    worklist.pop_back();
    for (CfgNodeId succ : succs_[static_cast<size_t>(node)]) {
      if (!reachable_[static_cast<size_t>(succ)]) {
        reachable_[static_cast<size_t>(succ)] = true;
        worklist.push_back(succ);
      }
    }
  }
}

}  // namespace anduril::analysis
