// Generic worklist dataflow engine over per-method CFGs.
//
// Problems are bit-vector valued: a DataflowProblem names its direction
// (forward = facts flow along CFG edges, backward = against them), its meet
// operator (union for may-analyses, intersection for must-analyses), the
// domain size, the boundary fact, and a per-node transfer function. The
// engine iterates a worklist to the (guaranteed, monotone-transfer) fixpoint
// and returns the per-node in/out facts.
//
// The lint passes use it for reachability; liveness-style backward problems
// are exercised by the unit tests. New passes only define transfer
// functions — the iteration order, meet handling, and convergence logic live
// here once.

#ifndef ANDURIL_SRC_ANALYSIS_DATAFLOW_H_
#define ANDURIL_SRC_ANALYSIS_DATAFLOW_H_

#include <cstdint>
#include <vector>

#include "src/analysis/cfg.h"

namespace anduril::analysis {

// Fixed-width bit set; word-parallel union/intersection.
class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(size_t bits) { Resize(bits); }

  void Resize(size_t bits) {
    bits_ = bits;
    words_.assign((bits + 63) / 64, 0);
  }
  size_t bit_count() const { return bits_; }

  bool Get(size_t i) const { return (words_[i / 64] >> (i % 64)) & 1; }
  void Set(size_t i) { words_[i / 64] |= uint64_t{1} << (i % 64); }
  void Reset(size_t i) { words_[i / 64] &= ~(uint64_t{1} << (i % 64)); }
  void SetAll() {
    for (uint64_t& word : words_) {
      word = ~uint64_t{0};
    }
    TrimTail();
  }
  void ClearAll() {
    for (uint64_t& word : words_) {
      word = 0;
    }
  }

  // In-place meet; both return whether *this changed.
  bool UnionWith(const BitVector& other) {
    bool changed = false;
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t merged = words_[w] | other.words_[w];
      changed |= merged != words_[w];
      words_[w] = merged;
    }
    return changed;
  }
  bool IntersectWith(const BitVector& other) {
    bool changed = false;
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t merged = words_[w] & other.words_[w];
      changed |= merged != words_[w];
      words_[w] = merged;
    }
    return changed;
  }

  size_t CountSet() const {
    size_t count = 0;
    for (uint64_t word : words_) {
      count += static_cast<size_t>(__builtin_popcountll(word));
    }
    return count;
  }

  friend bool operator==(const BitVector&, const BitVector&) = default;

 private:
  void TrimTail() {
    if (bits_ % 64 != 0 && !words_.empty()) {
      words_.back() &= (uint64_t{1} << (bits_ % 64)) - 1;
    }
  }

  size_t bits_ = 0;
  std::vector<uint64_t> words_;
};

class DataflowProblem {
 public:
  enum class Direction : uint8_t { kForward, kBackward };
  enum class Meet : uint8_t { kUnion, kIntersect };

  virtual ~DataflowProblem() = default;

  virtual Direction direction() const = 0;
  virtual Meet meet() const = 0;
  virtual size_t bit_count() const = 0;
  // Fact at the boundary node (entry for forward, exit for backward).
  // Default: all bits clear.
  virtual void Boundary(BitVector* fact) const { fact->ClearAll(); }
  // Computes the fact leaving `node` from the fact entering it ("entering"
  // and "leaving" are with respect to the analysis direction). Must be
  // monotone in `in` for the fixpoint to exist.
  virtual void Transfer(const MethodCfg& cfg, CfgNodeId node, const BitVector& in,
                        BitVector* out) const = 0;
};

struct DataflowResult {
  // Indexed by CfgNodeId. `in` is the meet over flow-predecessors, `out` the
  // transferred fact — for a backward problem `in[n]` is the fact at the
  // *end* of `n` and `out[n]` the fact at its start.
  std::vector<BitVector> in;
  std::vector<BitVector> out;
  int iterations = 0;  // worklist pops, for tests and the bench
};

DataflowResult SolveDataflow(const MethodCfg& cfg, const DataflowProblem& problem);

}  // namespace anduril::analysis

#endif  // ANDURIL_SRC_ANALYSIS_DATAFLOW_H_
