#include "src/analysis/dataflow.h"

#include <deque>

namespace anduril::analysis {

DataflowResult SolveDataflow(const MethodCfg& cfg, const DataflowProblem& problem) {
  const bool forward = problem.direction() == DataflowProblem::Direction::kForward;
  const bool meet_union = problem.meet() == DataflowProblem::Meet::kUnion;
  const size_t nodes = cfg.node_count();
  const size_t bits = problem.bit_count();
  const CfgNodeId boundary = forward ? cfg.entry() : cfg.exit();

  DataflowResult result;
  result.in.assign(nodes, BitVector(bits));
  result.out.assign(nodes, BitVector(bits));
  if (!meet_union) {
    // Top of the intersection lattice: everything holds until proven
    // otherwise. Nodes never visited (flow-unreachable) keep top.
    for (size_t n = 0; n < nodes; ++n) {
      result.in[n].SetAll();
      result.out[n].SetAll();
    }
  }
  problem.Boundary(&result.in[static_cast<size_t>(boundary)]);
  problem.Transfer(cfg, boundary, result.in[static_cast<size_t>(boundary)],
                   &result.out[static_cast<size_t>(boundary)]);

  std::deque<CfgNodeId> worklist;
  std::vector<bool> queued(nodes, false);
  for (size_t n = 0; n < nodes; ++n) {
    if (static_cast<CfgNodeId>(n) != boundary) {
      worklist.push_back(static_cast<CfgNodeId>(n));
      queued[n] = true;
    }
  }

  BitVector transferred(bits);
  while (!worklist.empty()) {
    CfgNodeId node = worklist.front();
    worklist.pop_front();
    queued[static_cast<size_t>(node)] = false;
    ++result.iterations;

    // Meet over flow-predecessors: CFG preds for forward, succs for backward.
    const std::vector<CfgNodeId>& sources = forward ? cfg.preds(node) : cfg.succs(node);
    BitVector& in = result.in[static_cast<size_t>(node)];
    if (node != boundary && !sources.empty()) {
      bool first = true;
      for (CfgNodeId source : sources) {
        const BitVector& fact = result.out[static_cast<size_t>(source)];
        if (first) {
          in = fact;
          first = false;
        } else if (meet_union) {
          in.UnionWith(fact);
        } else {
          in.IntersectWith(fact);
        }
      }
    }

    transferred.ClearAll();
    problem.Transfer(cfg, node, in, &transferred);
    if (transferred != result.out[static_cast<size_t>(node)]) {
      result.out[static_cast<size_t>(node)] = transferred;
      const std::vector<CfgNodeId>& sinks = forward ? cfg.succs(node) : cfg.preds(node);
      for (CfgNodeId sink : sinks) {
        if (!queued[static_cast<size_t>(sink)]) {
          worklist.push_back(sink);
          queued[static_cast<size_t>(sink)] = true;
        }
      }
    }
  }
  return result;
}

}  // namespace anduril::analysis
