// Lint pass suite over the IR: structural and dataflow checks that catch
// malformed scenarios before they reach the simulator or skew the causal
// graph. Built on the per-method CFGs (cfg.h), the dataflow engine
// (dataflow.h), the exception-flow summaries, and the program indexes.
//
// Pass catalogue (pass name → what it flags):
//   unreachable-stmt        statements no CFG path from the method entry
//                           reaches (code after Return/Throw, after a
//                           while-true with no break, ...)        [error]
//   shadowed-catch          a catch clause fully covered by an earlier
//                           clause of the same TryCatch            [error]
//   impossible-catch        a clause no exception raised in its try block
//                           can reach (per ExceptionFlow)          [warning]
//   write-only-var          variables assigned or signalled but never read
//                           by any expression or condition         [warning]
//   dead-fault-site         fault sites in methods unreachable from any
//                           cluster entry (cold-module dead weight) [info]
//   inert-log               log statements with no causally-prior fault
//                           site: observables no injection can flip [info]
//   unregistered-send-target a Send whose target node matches nothing in
//                           the cluster (would CHECK-fail at runtime) [error]
//   future-get-unsubmitted  FutureGet on a future variable no Submit in the
//                           whole program ever writes              [error]
//
// Severities are calibrated so shipped scenarios are error-clean: cold
// modules and fault-independent boot logs are deliberate scenario features
// (info), defensive catches are style (warning), while unreachable code,
// shadowed handlers, unknown send targets, and never-completed futures are
// genuine scenario bugs (error).

#ifndef ANDURIL_SRC_ANALYSIS_LINT_H_
#define ANDURIL_SRC_ANALYSIS_LINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/ir/program.h"

namespace anduril::analysis {

enum class LintSeverity : uint8_t { kError, kWarning, kInfo };

const char* LintSeverityName(LintSeverity severity);

struct LintDiagnostic {
  LintSeverity severity = LintSeverity::kInfo;
  std::string pass;       // pass name from the catalogue above
  ir::GlobalStmt location;
  std::string message;
};

// Cluster facts the analysis layer cannot derive from the program alone
// (interp::ClusterSpec lives a layer above): registered node names and the
// methods started as boot/workload tasks. The cluster-dependent passes
// (dead-fault-site, unregistered-send-target) only run when `provided`.
struct LintEnvironment {
  bool provided = false;
  std::vector<std::string> node_names;
  std::vector<ir::MethodId> entry_methods;
};

struct LintReport {
  std::vector<LintDiagnostic> diagnostics;
  double seconds = 0;  // lint wall time (reported by the bench)

  size_t CountOf(LintSeverity severity) const;
  size_t error_count() const { return CountOf(LintSeverity::kError); }

  // One line per diagnostic ("error [pass] @method#stmt: message") followed
  // by a summary line.
  std::string ToText(const ir::Program& program) const;
  // Stable JSON: {"errors": N, "warnings": N, "infos": N, "seconds": S,
  // "diagnostics": [{severity, pass, method, stmt, message}, ...]}.
  std::string ToJson(const ir::Program& program) const;
};

// Runs every pass. Diagnostics are ordered by pass, then method, then
// statement — deterministic for golden output.
LintReport RunLints(const ir::Program& program, const LintEnvironment& env = {});

}  // namespace anduril::analysis

#endif  // ANDURIL_SRC_ANALYSIS_LINT_H_
