#include "src/analysis/graph_export.h"

#include "src/util/strings.h"

namespace anduril::analysis {

std::string EscapeDotLabel(const std::string& text, size_t max_chars) {
  std::string out;
  out.reserve(text.size() + 8);
  size_t consumed = 0;
  for (char raw : text) {
    unsigned char c = static_cast<unsigned char>(raw);
    const bool utf8_continuation = (c & 0xc0) == 0x80;
    // The cap counts code points and only breaks at a code-point boundary,
    // so a multi-byte character is never split.
    if (max_chars != 0 && consumed >= max_chars && !utf8_continuation) {
      out += "...";
      break;
    }
    if (!utf8_continuation) {
      ++consumed;
    }
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(raw);
    } else if (c == '\n') {
      out += "\\n";
    } else if (c == '\r') {
      out += "\\r";
    } else if (c == '\t') {
      out += "\\t";
    } else if (c < 0x20 || c == 0x7f) {
      // Literal "\xNN" text (the DOT file carries an escaped backslash).
      out += StrFormat("\\\\x%02x", c);
    } else {
      out.push_back(raw);  // includes UTF-8 continuation bytes, untouched
    }
  }
  return out;
}

std::string DescribeNode(const ir::Program& program, const CausalNode& node) {
  const ir::Method& method = program.method(node.loc.method);
  switch (node.kind) {
    case CausalNodeKind::kLocation: {
      const ir::Stmt& stmt = method.stmt(node.loc.stmt);
      if (stmt.kind == ir::StmtKind::kLog) {
        return StrFormat("log \"%s\" @%s",
                         program.log_template(stmt.log_template).text.c_str(),
                         method.name.c_str());
      }
      return StrFormat("%s @%s#%d", ir::StmtKindName(stmt.kind), method.name.c_str(),
                       node.loc.stmt);
    }
    case CausalNodeKind::kCondition:
      return StrFormat("cond @%s#%d", method.name.c_str(), node.loc.stmt);
    case CausalNodeKind::kInvocation:
      return StrFormat("entry %s", method.name.c_str());
    case CausalNodeKind::kHandler:
      return StrFormat("catch[%d] @%s#%d", node.aux, method.name.c_str(), node.loc.stmt);
    case CausalNodeKind::kInternalExc:
      return StrFormat("internal %s via %s#%d",
                       program.exception_type(node.aux).name.c_str(), method.name.c_str(),
                       node.loc.stmt);
    case CausalNodeKind::kNewExc:
      return StrFormat("new %s @%s#%d", program.exception_type(node.aux).name.c_str(),
                       method.name.c_str(), node.loc.stmt);
    case CausalNodeKind::kExternalExc: {
      ir::FaultSiteId site = program.FaultSiteAt(node.loc);
      return StrFormat("external %s @%s", program.exception_type(node.aux).name.c_str(),
                       site != ir::kInvalidId ? program.fault_site(site).name.c_str()
                                              : method.name.c_str());
    }
  }
  return "?";
}

std::string ExportDot(const ir::Program& program, const CausalGraph& graph,
                      size_t max_nodes) {
  size_t limit = max_nodes == 0 ? graph.node_count() : std::min(max_nodes, graph.node_count());
  std::string out = "digraph causal {\n  rankdir=BT;\n  node [fontsize=9];\n";
  for (size_t n = 0; n < limit; ++n) {
    const CausalNode& node = graph.node(static_cast<CausalNodeId>(n));
    const char* shape = "ellipse";
    if (node.kind == CausalNodeKind::kExternalExc || node.kind == CausalNodeKind::kNewExc) {
      shape = "box";
    } else if (node.kind == CausalNodeKind::kLocation) {
      const ir::Stmt& stmt = program.method(node.loc.method).stmt(node.loc.stmt);
      if (stmt.kind == ir::StmtKind::kLog) {
        shape = "doublecircle";
      }
    }
    // Escape after composing (and cap per label): truncating the raw
    // template first could split a multi-byte character, and truncating
    // after escaping could cut an escape sequence in half.
    out += StrFormat("  n%zu [label=\"%s\" shape=%s];\n", n,
                     EscapeDotLabel(DescribeNode(program, node), /*max_chars=*/64).c_str(),
                     shape);
  }
  for (size_t n = 0; n < limit; ++n) {
    for (CausalNodeId prior : graph.priors(static_cast<CausalNodeId>(n))) {
      if (static_cast<size_t>(prior) < limit) {
        out += StrFormat("  n%d -> n%zu;\n", prior, n);
      }
    }
  }
  if (limit < graph.node_count()) {
    out += StrFormat("  // truncated: %zu of %zu nodes shown\n", limit, graph.node_count());
  }
  out += "}\n";
  return out;
}

}  // namespace anduril::analysis
