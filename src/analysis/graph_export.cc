#include "src/analysis/graph_export.h"

#include "src/util/strings.h"

namespace anduril::analysis {

namespace {

std::string EscapeLabel(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string DescribeNode(const ir::Program& program, const CausalNode& node) {
  const ir::Method& method = program.method(node.loc.method);
  switch (node.kind) {
    case CausalNodeKind::kLocation: {
      const ir::Stmt& stmt = method.stmt(node.loc.stmt);
      if (stmt.kind == ir::StmtKind::kLog) {
        return StrFormat("log \"%s\" @%s",
                         program.log_template(stmt.log_template).text.substr(0, 40).c_str(),
                         method.name.c_str());
      }
      return StrFormat("%s @%s#%d", ir::StmtKindName(stmt.kind), method.name.c_str(),
                       node.loc.stmt);
    }
    case CausalNodeKind::kCondition:
      return StrFormat("cond @%s#%d", method.name.c_str(), node.loc.stmt);
    case CausalNodeKind::kInvocation:
      return StrFormat("entry %s", method.name.c_str());
    case CausalNodeKind::kHandler:
      return StrFormat("catch[%d] @%s#%d", node.aux, method.name.c_str(), node.loc.stmt);
    case CausalNodeKind::kInternalExc:
      return StrFormat("internal %s via %s#%d",
                       program.exception_type(node.aux).name.c_str(), method.name.c_str(),
                       node.loc.stmt);
    case CausalNodeKind::kNewExc:
      return StrFormat("new %s @%s#%d", program.exception_type(node.aux).name.c_str(),
                       method.name.c_str(), node.loc.stmt);
    case CausalNodeKind::kExternalExc: {
      ir::FaultSiteId site = program.FaultSiteAt(node.loc);
      return StrFormat("external %s @%s", program.exception_type(node.aux).name.c_str(),
                       site != ir::kInvalidId ? program.fault_site(site).name.c_str()
                                              : method.name.c_str());
    }
  }
  return "?";
}

std::string ExportDot(const ir::Program& program, const CausalGraph& graph,
                      size_t max_nodes) {
  size_t limit = max_nodes == 0 ? graph.node_count() : std::min(max_nodes, graph.node_count());
  std::string out = "digraph causal {\n  rankdir=BT;\n  node [fontsize=9];\n";
  for (size_t n = 0; n < limit; ++n) {
    const CausalNode& node = graph.node(static_cast<CausalNodeId>(n));
    const char* shape = "ellipse";
    if (node.kind == CausalNodeKind::kExternalExc || node.kind == CausalNodeKind::kNewExc) {
      shape = "box";
    } else if (node.kind == CausalNodeKind::kLocation) {
      const ir::Stmt& stmt = program.method(node.loc.method).stmt(node.loc.stmt);
      if (stmt.kind == ir::StmtKind::kLog) {
        shape = "doublecircle";
      }
    }
    out += StrFormat("  n%zu [label=\"%s\" shape=%s];\n", n,
                     EscapeLabel(DescribeNode(program, node)).c_str(), shape);
  }
  for (size_t n = 0; n < limit; ++n) {
    for (CausalNodeId prior : graph.priors(static_cast<CausalNodeId>(n))) {
      if (static_cast<size_t>(prior) < limit) {
        out += StrFormat("  n%d -> n%zu;\n", prior, n);
      }
    }
  }
  if (limit < graph.node_count()) {
    out += StrFormat("  // truncated: %zu of %zu nodes shown\n", limit, graph.node_count());
  }
  out += "}\n";
  return out;
}

}  // namespace anduril::analysis
