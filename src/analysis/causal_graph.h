// Static causal graph construction (paper §4.1, Algorithm 1).
//
// Starting from sink nodes (program points that produce the relevant
// observables), the builder recursively computes "causally prior" nodes:
//
//   location    — prior: enclosing conditions / handlers, preceding awaits,
//                 and the invocation (method entry)
//   condition   — prior: location priors + jumping slicing (all writers and
//                 signallers of the condition's variables, program-wide)
//   invocation  — prior: every call site of the method
//   handler     — prior: origins of the exceptions the clause catches
//                 (intra- and inter-procedural, via ExceptionFlow)
//   internal-exception — an exception propagating through an invocation or a
//                 FutureGet; prior: the origins inside the callee / the
//                 submitted task (future semantics)
//   new-exception — `throw new` / timeout origins. Terminal, EXCEPT the
//                 paper's downgrade rule: a throw inside a catch block
//                 continues through that handler, and an await-timeout
//                 continues through its own condition (the timeout happened
//                 because nobody signalled it).
//   external-exception — library-call origin. Terminal: an injectable root
//                 cause.
//
// Sources (new/external exception nodes) are the fault-site candidates; the
// per-sink BFS distances over the cause edges are the spatial distances
// L_{i,k} of §5.2.2.

#ifndef ANDURIL_SRC_ANALYSIS_CAUSAL_GRAPH_H_
#define ANDURIL_SRC_ANALYSIS_CAUSAL_GRAPH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/analysis/exception_flow.h"
#include "src/analysis/indexes.h"
#include "src/ir/program.h"

namespace anduril::analysis {

enum class CausalNodeKind : uint8_t {
  kLocation,
  kCondition,
  kInvocation,   // method entry; loc.method identifies the method
  kHandler,      // loc = the TryCatch statement; aux = clause index
  kInternalExc,  // loc = the Invoke/FutureGet statement; aux = exception type
  kNewExc,       // loc = Throw/Await/FutureGet; aux = exception type
  kExternalExc,  // loc = ExternalCall; aux = exception type
};

const char* CausalNodeKindName(CausalNodeKind kind);

struct CausalNode {
  CausalNodeKind kind = CausalNodeKind::kLocation;
  ir::GlobalStmt loc;
  int32_t aux = -1;

  friend bool operator==(const CausalNode&, const CausalNode&) = default;
};

using CausalNodeId = int32_t;

// A sink: a program point whose execution produces a relevant observable.
struct CausalSink {
  // Index of the observable this sink belongs to (explorer-side key list).
  int32_t observable = -1;
  // Either a Log statement location...
  ir::GlobalStmt log_stmt;
  // ...or a fault site named directly by the log (uncaught-exception stack
  // traces). kInvalidId if unused.
  ir::FaultSiteId direct_site = ir::kInvalidId;
  // Exception type parsed from the log for a direct site (optional).
  ir::ExceptionTypeId direct_type = ir::kInvalidId;
};

struct CausalGraphStats {
  double exception_seconds = 0;  // exception-flow fixpoint
  double slicing_seconds = 0;    // write-index construction
  double chaining_seconds = 0;   // worklist expansion (Algorithm 1)
  int64_t vertices = 0;
  int64_t edges = 0;
  int64_t inferred_fault_sites = 0;  // distinct fault sites among sources
};

class CausalGraph {
 public:
  // Builds the graph for `sinks`. ExceptionFlow and ProgramIndexes are
  // constructed internally (their times are reported in `stats`).
  CausalGraph(const ir::Program& program, const std::vector<CausalSink>& sinks);

  const CausalGraphStats& stats() const { return stats_; }
  size_t node_count() const { return nodes_.size(); }
  const CausalNode& node(CausalNodeId id) const { return nodes_[static_cast<size_t>(id)]; }
  const std::vector<CausalNodeId>& priors(CausalNodeId id) const {
    return priors_[static_cast<size_t>(id)];
  }

  // Source nodes that correspond to static fault sites, and their site ids.
  struct SourceSite {
    CausalNodeId node = -1;
    ir::FaultSiteId site = ir::kInvalidId;
    ir::ExceptionTypeId type = ir::kInvalidId;
  };
  const std::vector<SourceSite>& sources() const { return sources_; }

  // For observable k (0..num_observables-1): BFS distance from each node to
  // the nearest sink of that observable, following cause edges backwards.
  // Returns kUnreachable for unreachable nodes.
  static constexpr int32_t kUnreachable = INT32_MAX;
  std::vector<int32_t> DistancesToObservable(int32_t observable) const;
  int32_t num_observables() const { return num_observables_; }

  // Node lookup (for tests).
  CausalNodeId FindNode(const CausalNode& node) const;

 private:
  struct NodeHash {
    size_t operator()(const CausalNode& n) const {
      size_t h = static_cast<size_t>(n.kind);
      h = h * 1000003u + static_cast<size_t>(n.loc.method + 1);
      h = h * 1000003u + static_cast<size_t>(n.loc.stmt + 1);
      h = h * 1000003u + static_cast<size_t>(n.aux + 1);
      return h;
    }
  };

  CausalNodeId GetOrAdd(const CausalNode& node, std::vector<CausalNodeId>* worklist);
  void AddEdge(CausalNodeId prior, CausalNodeId node);
  void ExpandNode(CausalNodeId id, std::vector<CausalNodeId>* worklist);

  // Per-kind prior computations.
  void AddDominatorThrowers(const ir::Method& method, ir::StmtId stmt_id,
                            std::vector<CausalNode>* out) const;
  void LocationPriors(const CausalNode& node, std::vector<CausalNode>* out) const;
  void ConditionPriors(const CausalNode& node, std::vector<CausalNode>* out) const;
  void InvocationPriors(const CausalNode& node, std::vector<CausalNode>* out) const;
  void HandlerPriors(const CausalNode& node, std::vector<CausalNode>* out) const;
  void InternalExcPriors(const CausalNode& node, std::vector<CausalNode>* out) const;
  void NewExcPriors(const CausalNode& node, std::vector<CausalNode>* out) const;
  // Maps a ThrowOrigin in `method` to the causal node representing it.
  CausalNode OriginToNode(ir::MethodId method, const ThrowOrigin& origin) const;

  const ir::Program& program_;
  std::unique_ptr<ExceptionFlow> exception_flow_;
  std::unique_ptr<ProgramIndexes> indexes_;

  std::vector<CausalNode> nodes_;
  std::vector<std::vector<CausalNodeId>> priors_;
  std::vector<std::vector<CausalNodeId>> effects_;  // reverse edges (unused in BFS but kept)
  std::unordered_map<CausalNode, CausalNodeId, NodeHash> index_;
  std::vector<SourceSite> sources_;
  std::vector<std::vector<CausalNodeId>> observable_sink_nodes_;  // per observable
  int32_t num_observables_ = 0;
  CausalGraphStats stats_;
};

}  // namespace anduril::analysis

#endif  // ANDURIL_SRC_ANALYSIS_CAUSAL_GRAPH_H_
