#include "src/analysis/causal_graph.h"

#include <deque>

#include "src/util/check.h"
#include "src/util/stopwatch.h"

namespace anduril::analysis {

const char* CausalNodeKindName(CausalNodeKind kind) {
  switch (kind) {
    case CausalNodeKind::kLocation:
      return "location";
    case CausalNodeKind::kCondition:
      return "condition";
    case CausalNodeKind::kInvocation:
      return "invocation";
    case CausalNodeKind::kHandler:
      return "handler";
    case CausalNodeKind::kInternalExc:
      return "internal-exception";
    case CausalNodeKind::kNewExc:
      return "new-exception";
    case CausalNodeKind::kExternalExc:
      return "external-exception";
  }
  ANDURIL_UNREACHABLE();
}

namespace {

// Finds the catch clause (trycatch stmt, clause index) whose block contains
// `stmt_id`, or returns false.
bool EnclosingCatch(const ir::Method& method, ir::StmtId stmt_id, ir::StmtId* trycatch,
                    size_t* clause_index) {
  ir::StmtId cur = stmt_id;
  ir::StmtId parent = method.stmt(cur).parent;
  while (parent != ir::kInvalidId) {
    const ir::Stmt& p = method.stmt(parent);
    if (p.kind == ir::StmtKind::kTryCatch) {
      for (size_t i = 0; i < p.catches.size(); ++i) {
        if (p.catches[i].block == cur) {
          *trycatch = parent;
          *clause_index = i;
          return true;
        }
      }
    }
    cur = parent;
    parent = method.stmt(cur).parent;
  }
  return false;
}

// Does the subtree rooted at `stmt_id` contain a statement that diverts
// control away from whatever follows the subtree (Break, Return, or Throw)?
// Used to decide whether a preceding structured sibling can prevent a
// location from executing even when nothing in it throws. `break_escapes`
// is false once the walk enters a While body: a Break there only exits that
// loop, staying inside the subtree.
bool SubtreeDiverts(const ir::Method& method, ir::StmtId stmt_id, bool break_escapes) {
  const ir::Stmt& stmt = method.stmt(stmt_id);
  switch (stmt.kind) {
    case ir::StmtKind::kBreak:
      return break_escapes;
    case ir::StmtKind::kReturn:
    case ir::StmtKind::kThrow:
      return true;
    case ir::StmtKind::kBlock:
      for (ir::StmtId child : stmt.children) {
        if (SubtreeDiverts(method, child, break_escapes)) {
          return true;
        }
      }
      return false;
    case ir::StmtKind::kIf:
      return SubtreeDiverts(method, stmt.then_block, break_escapes) ||
             (stmt.else_block != ir::kInvalidId &&
              SubtreeDiverts(method, stmt.else_block, break_escapes));
    case ir::StmtKind::kWhile:
      return SubtreeDiverts(method, stmt.then_block, /*break_escapes=*/false);
    case ir::StmtKind::kTryCatch: {
      if (SubtreeDiverts(method, stmt.try_block, break_escapes)) {
        return true;
      }
      for (const ir::CatchClause& clause : stmt.catches) {
        if (SubtreeDiverts(method, clause.block, break_escapes)) {
          return true;
        }
      }
      return false;
    }
    default:
      return false;
  }
}

}  // namespace

CausalGraph::CausalGraph(const ir::Program& program, const std::vector<CausalSink>& sinks)
    : program_(program) {
  Stopwatch exception_timer;
  exception_flow_ = std::make_unique<ExceptionFlow>(program);
  stats_.exception_seconds = exception_timer.ElapsedSeconds();

  Stopwatch slicing_timer;
  indexes_ = std::make_unique<ProgramIndexes>(program);
  stats_.slicing_seconds = slicing_timer.ElapsedSeconds();

  Stopwatch chaining_timer;
  std::vector<CausalNodeId> worklist;
  for (const CausalSink& sink : sinks) {
    num_observables_ = std::max(num_observables_, sink.observable + 1);
  }
  observable_sink_nodes_.resize(static_cast<size_t>(num_observables_));
  for (const CausalSink& sink : sinks) {
    CausalNodeId id = -1;
    if (sink.direct_site != ir::kInvalidId) {
      const ir::FaultSite& site = program.fault_site(sink.direct_site);
      const ir::Stmt& stmt =
          program.method(site.location.method).stmt(site.location.stmt);
      CausalNode node;
      node.loc = site.location;
      if (site.kind == ir::FaultSiteKind::kExternal) {
        node.kind = CausalNodeKind::kExternalExc;
        node.aux = sink.direct_type != ir::kInvalidId ? sink.direct_type
                                                      : stmt.throwable_types.front();
      } else {
        node.kind = CausalNodeKind::kNewExc;
        node.aux = stmt.exception_type;
      }
      id = GetOrAdd(node, &worklist);
    } else {
      CausalNode node;
      node.kind = CausalNodeKind::kLocation;
      node.loc = sink.log_stmt;
      id = GetOrAdd(node, &worklist);
    }
    observable_sink_nodes_[static_cast<size_t>(sink.observable)].push_back(id);
  }

  // Algorithm 1: worklist expansion.
  while (!worklist.empty()) {
    CausalNodeId id = worklist.back();
    worklist.pop_back();
    ExpandNode(id, &worklist);
  }
  stats_.chaining_seconds = chaining_timer.ElapsedSeconds();

  // Collect sources (fault-site candidates).
  std::unordered_map<ir::FaultSiteId, bool> seen_sites;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const CausalNode& node = nodes_[i];
    if (node.kind != CausalNodeKind::kExternalExc && node.kind != CausalNodeKind::kNewExc) {
      continue;
    }
    ir::FaultSiteId site = program.FaultSiteAt(node.loc);
    if (site == ir::kInvalidId) {
      continue;
    }
    sources_.push_back(SourceSite{static_cast<CausalNodeId>(i), site,
                                  static_cast<ir::ExceptionTypeId>(node.aux)});
    seen_sites[site] = true;
  }
  stats_.inferred_fault_sites = static_cast<int64_t>(seen_sites.size());
  stats_.vertices = static_cast<int64_t>(nodes_.size());
  for (const auto& priors : priors_) {
    stats_.edges += static_cast<int64_t>(priors.size());
  }
}

CausalNodeId CausalGraph::GetOrAdd(const CausalNode& node, std::vector<CausalNodeId>* worklist) {
  auto it = index_.find(node);
  if (it != index_.end()) {
    return it->second;
  }
  CausalNodeId id = static_cast<CausalNodeId>(nodes_.size());
  nodes_.push_back(node);
  priors_.emplace_back();
  effects_.emplace_back();
  index_[node] = id;
  worklist->push_back(id);
  return id;
}

void CausalGraph::AddEdge(CausalNodeId prior, CausalNodeId node) {
  priors_[static_cast<size_t>(node)].push_back(prior);
  effects_[static_cast<size_t>(prior)].push_back(node);
}

CausalNodeId CausalGraph::FindNode(const CausalNode& node) const {
  auto it = index_.find(node);
  return it == index_.end() ? -1 : it->second;
}

void CausalGraph::ExpandNode(CausalNodeId id, std::vector<CausalNodeId>* worklist) {
  // Copy: nodes_ may reallocate while adding priors.
  const CausalNode node = nodes_[static_cast<size_t>(id)];
  std::vector<CausalNode> priors;
  switch (node.kind) {
    case CausalNodeKind::kLocation:
      LocationPriors(node, &priors);
      break;
    case CausalNodeKind::kCondition:
      ConditionPriors(node, &priors);
      break;
    case CausalNodeKind::kInvocation:
      InvocationPriors(node, &priors);
      break;
    case CausalNodeKind::kHandler:
      HandlerPriors(node, &priors);
      break;
    case CausalNodeKind::kInternalExc:
      InternalExcPriors(node, &priors);
      break;
    case CausalNodeKind::kNewExc:
      NewExcPriors(node, &priors);
      break;
    case CausalNodeKind::kExternalExc:
      break;  // terminal: injectable root cause
  }
  for (const CausalNode& prior : priors) {
    CausalNodeId prior_id = GetOrAdd(prior, worklist);
    AddEdge(prior_id, id);
  }
}

void CausalGraph::AddDominatorThrowers(const ir::Method& method, ir::StmtId stmt_id,
                                       std::vector<CausalNode>* out) const {
  const ir::Stmt& stmt = method.stmt(stmt_id);
  switch (stmt.kind) {
    case ir::StmtKind::kAwait: {
      CausalNode cond;
      cond.kind = CausalNodeKind::kCondition;
      cond.loc = ir::GlobalStmt{method.id, stmt_id};
      out->push_back(cond);
      return;
    }
    case ir::StmtKind::kExternalCall:
      for (ir::ExceptionTypeId type : stmt.throwable_types) {
        CausalNode exc;
        exc.kind = CausalNodeKind::kExternalExc;
        exc.loc = ir::GlobalStmt{method.id, stmt_id};
        exc.aux = type;
        out->push_back(exc);
      }
      return;
    case ir::StmtKind::kInvoke:
      for (const ThrowOrigin& escape : exception_flow_->Escapes(stmt.callee)) {
        CausalNode exc;
        exc.kind = CausalNodeKind::kInternalExc;
        exc.loc = ir::GlobalStmt{method.id, stmt_id};
        exc.aux = escape.type;
        out->push_back(exc);
      }
      return;
    case ir::StmtKind::kFutureGet: {
      ir::ExceptionTypeId exec = program_.FindException("ExecutionException");
      if (exec != ir::kInvalidId) {
        CausalNode exc;
        exc.kind = CausalNodeKind::kInternalExc;
        exc.loc = ir::GlobalStmt{method.id, stmt_id};
        exc.aux = exec;
        out->push_back(exc);
      }
      return;
    }
    // Structured dominators are recursed into wholesale: an exception (or an
    // early return from a catch) anywhere inside a preceding If/While/Try can
    // divert control away from the current location. Like Pensieve's jumping
    // strategy, this over-approximates — false dependencies are pruned by the
    // dynamic feedback, not by the static analysis (§4.1).
    case ir::StmtKind::kBlock:
      for (ir::StmtId child : stmt.children) {
        AddDominatorThrowers(method, child, out);
      }
      return;
    case ir::StmtKind::kIf:
      AddDominatorThrowers(method, stmt.then_block, out);
      if (stmt.else_block != ir::kInvalidId) {
        AddDominatorThrowers(method, stmt.else_block, out);
      }
      // A branch that can Break/Return/Throw diverts control away from the
      // current location, so whether it was taken — the condition — is
      // causally prior (the hb-16144 pattern: a preceding `if (granted)
      // break;` decides whether the failure log downstream ever runs).
      if (SubtreeDiverts(method, stmt.then_block, /*break_escapes=*/true) ||
          (stmt.else_block != ir::kInvalidId &&
           SubtreeDiverts(method, stmt.else_block, /*break_escapes=*/true))) {
        CausalNode cond;
        cond.kind = CausalNodeKind::kCondition;
        cond.loc = ir::GlobalStmt{method.id, stmt_id};
        out->push_back(cond);
      }
      return;
    case ir::StmtKind::kWhile:
      AddDominatorThrowers(method, stmt.then_block, out);
      if (SubtreeDiverts(method, stmt.then_block, /*break_escapes=*/false)) {
        CausalNode cond;
        cond.kind = CausalNodeKind::kCondition;
        cond.loc = ir::GlobalStmt{method.id, stmt_id};
        out->push_back(cond);
      }
      return;
    case ir::StmtKind::kTryCatch:
      AddDominatorThrowers(method, stmt.try_block, out);
      for (size_t i = 0; i < stmt.catches.size(); ++i) {
        AddDominatorThrowers(method, stmt.catches[i].block, out);
        // An early Return from a catch block skips everything after the
        // TryCatch; the handler (and through it, the exceptions it catches)
        // is then causally prior to the current location.
        if (SubtreeDiverts(method, stmt.catches[i].block, /*break_escapes=*/true)) {
          CausalNode handler;
          handler.kind = CausalNodeKind::kHandler;
          handler.loc = ir::GlobalStmt{method.id, stmt_id};
          handler.aux = static_cast<int32_t>(i);
          out->push_back(handler);
        }
      }
      return;
    default:
      return;
  }
}

void CausalGraph::LocationPriors(const CausalNode& node, std::vector<CausalNode>* out) const {
  const ir::Method& method = program_.method(node.loc.method);
  ir::StmtId cur = node.loc.stmt;
  ir::StmtId parent = method.stmt(cur).parent;
  while (parent != ir::kInvalidId) {
    const ir::Stmt& p = method.stmt(parent);
    switch (p.kind) {
      case ir::StmtKind::kIf:
      case ir::StmtKind::kWhile:
        if (p.then_block == cur || p.else_block == cur) {
          CausalNode cond;
          cond.kind = CausalNodeKind::kCondition;
          cond.loc = ir::GlobalStmt{method.id, parent};
          out->push_back(cond);
        }
        break;
      case ir::StmtKind::kTryCatch:
        for (size_t i = 0; i < p.catches.size(); ++i) {
          if (p.catches[i].block == cur) {
            CausalNode handler;
            handler.kind = CausalNodeKind::kHandler;
            handler.loc = ir::GlobalStmt{method.id, parent};
            handler.aux = static_cast<int32_t>(i);
            out->push_back(handler);
          }
        }
        break;
      case ir::StmtKind::kBlock: {
        // Preceding siblings dominate this point. Two dominator families
        // matter causally: conditions (Await), and statements that can throw
        // — reaching this location requires them to complete normally, so an
        // exception there makes the location (and its observable) disappear
        // or, symmetrically, a skipped write makes a downstream condition
        // flip. This is the exception-interruption causality the paper's
        // exception analysis contributes on top of Pensieve.
        for (ir::StmtId sibling : p.children) {
          if (sibling == cur) {
            break;
          }
          AddDominatorThrowers(method, sibling, out);
        }
        break;
      }
      default:
        break;
    }
    cur = parent;
    parent = method.stmt(cur).parent;
  }
  CausalNode invocation;
  invocation.kind = CausalNodeKind::kInvocation;
  invocation.loc = ir::GlobalStmt{method.id, 0};
  out->push_back(invocation);
}

void CausalGraph::ConditionPriors(const CausalNode& node, std::vector<CausalNode>* out) const {
  LocationPriors(node, out);
  const ir::Method& method = program_.method(node.loc.method);
  const ir::Stmt& stmt = method.stmt(node.loc.stmt);
  std::vector<ir::VarId> reads;
  stmt.cond.CollectReads(&reads);
  for (ir::VarId var : reads) {
    for (const ir::GlobalStmt& writer : indexes_->WritersOf(var)) {
      CausalNode location;
      location.kind = CausalNodeKind::kLocation;
      location.loc = writer;
      out->push_back(location);
    }
  }
}

void CausalGraph::InvocationPriors(const CausalNode& node, std::vector<CausalNode>* out) const {
  for (const CallSite& site : indexes_->CallersOf(node.loc.method)) {
    CausalNode location;
    location.kind = CausalNodeKind::kLocation;
    location.loc = site.location;
    out->push_back(location);
  }
}

CausalNode CausalGraph::OriginToNode(ir::MethodId method, const ThrowOrigin& origin) const {
  CausalNode node;
  node.loc = ir::GlobalStmt{method, origin.stmt};
  node.aux = origin.type;
  switch (origin.kind) {
    case OriginKind::kNew:
    case OriginKind::kAwaitTimeout:
    case OriginKind::kFutureTimeout:
      node.kind = CausalNodeKind::kNewExc;
      return node;
    case OriginKind::kExternal:
      node.kind = CausalNodeKind::kExternalExc;
      return node;
    case OriginKind::kViaInvoke:
    case OriginKind::kViaFuture:
      node.kind = CausalNodeKind::kInternalExc;
      return node;
    case OriginKind::kRethrow: {
      // Continue the analysis through the handler the rethrow sits in.
      const ir::Method& m = program_.method(method);
      ir::StmtId trycatch = ir::kInvalidId;
      size_t clause = 0;
      bool found = EnclosingCatch(m, origin.stmt, &trycatch, &clause);
      ANDURIL_CHECK(found) << "rethrow outside catch";
      node.kind = CausalNodeKind::kHandler;
      node.loc = ir::GlobalStmt{method, trycatch};
      node.aux = static_cast<int32_t>(clause);
      return node;
    }
  }
  ANDURIL_UNREACHABLE();
}

void CausalGraph::HandlerPriors(const CausalNode& node, std::vector<CausalNode>* out) const {
  // The handler is also a program point: its enclosing context matters.
  LocationPriors(node, out);
  for (const ThrowOrigin& origin : exception_flow_->HandlerOrigins(
           node.loc.method, node.loc.stmt, static_cast<size_t>(node.aux))) {
    out->push_back(OriginToNode(node.loc.method, origin));
  }
}

void CausalGraph::InternalExcPriors(const CausalNode& node, std::vector<CausalNode>* out) const {
  const ir::Method& method = program_.method(node.loc.method);
  const ir::Stmt& stmt = method.stmt(node.loc.stmt);
  if (stmt.kind == ir::StmtKind::kInvoke) {
    for (const ThrowOrigin& origin : exception_flow_->Escapes(stmt.callee)) {
      if (origin.type == node.aux) {
        out->push_back(OriginToNode(stmt.callee, origin));
      }
    }
    return;
  }
  if (stmt.kind == ir::StmtKind::kFutureGet) {
    // Future semantics (§4.1): the ExecutionException wraps whatever escaped
    // the submitted task. Resolve the future variable to its Submit sites.
    for (const ir::GlobalStmt& submit_loc : indexes_->SubmitsFor(stmt.future_var)) {
      const ir::Stmt& submit =
          program_.method(submit_loc.method).stmt(submit_loc.stmt);
      for (const ThrowOrigin& origin : exception_flow_->Escapes(submit.callee)) {
        out->push_back(OriginToNode(submit.callee, origin));
      }
    }
    return;
  }
  ANDURIL_UNREACHABLE() << "internal-exception node at unexpected statement";
}

void CausalGraph::NewExcPriors(const CausalNode& node, std::vector<CausalNode>* out) const {
  const ir::Method& method = program_.method(node.loc.method);
  const ir::Stmt& stmt = method.stmt(node.loc.stmt);
  if (stmt.kind == ir::StmtKind::kThrow) {
    // Downgrade rule: a `throw new` inside a catch block is re-raising a
    // deeper fault; continue through the handler.
    ir::StmtId trycatch = ir::kInvalidId;
    size_t clause = 0;
    if (EnclosingCatch(method, node.loc.stmt, &trycatch, &clause)) {
      CausalNode handler;
      handler.kind = CausalNodeKind::kHandler;
      handler.loc = ir::GlobalStmt{node.loc.method, trycatch};
      handler.aux = static_cast<int32_t>(clause);
      out->push_back(handler);
    }
    // The throw only fires if control reaches it, so its enclosing
    // conditions (and, through slicing, their writers) are causally prior —
    // a guarded `throw new NPE` traces back to whatever skipped the write
    // its guard tests (the zk-3006 pattern). The source registration below
    // still makes the throw itself an injectable root cause.
    LocationPriors(node, out);
    return;
  }
  if (stmt.kind == ir::StmtKind::kAwait) {
    // A timeout fired because nothing satisfied the condition: the condition
    // (and, via slicing, its writers and signallers) is the cause.
    CausalNode cond;
    cond.kind = CausalNodeKind::kCondition;
    cond.loc = node.loc;
    out->push_back(cond);
    return;
  }
  // FutureGet timeout: terminal.
}

std::vector<int32_t> CausalGraph::DistancesToObservable(int32_t observable) const {
  std::vector<int32_t> dist(nodes_.size(), kUnreachable);
  std::deque<CausalNodeId> queue;
  for (CausalNodeId sink : observable_sink_nodes_[static_cast<size_t>(observable)]) {
    if (dist[static_cast<size_t>(sink)] == kUnreachable) {
      dist[static_cast<size_t>(sink)] = 0;
      queue.push_back(sink);
    }
  }
  while (!queue.empty()) {
    CausalNodeId id = queue.front();
    queue.pop_front();
    int32_t next = dist[static_cast<size_t>(id)] + 1;
    for (CausalNodeId prior : priors_[static_cast<size_t>(id)]) {
      if (dist[static_cast<size_t>(prior)] > next) {
        dist[static_cast<size_t>(prior)] = next;
        queue.push_back(prior);
      }
    }
  }
  return dist;
}

}  // namespace anduril::analysis
