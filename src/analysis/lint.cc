#include "src/analysis/lint.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "src/analysis/causal_graph.h"
#include "src/analysis/cfg.h"
#include "src/analysis/exception_flow.h"
#include "src/analysis/indexes.h"
#include "src/util/json.h"
#include "src/util/stopwatch.h"
#include "src/util/strings.h"

namespace anduril::analysis {

namespace {

void Emit(LintReport* report, LintSeverity severity, const char* pass,
          ir::GlobalStmt location, std::string message) {
  report->diagnostics.push_back(
      LintDiagnostic{severity, pass, location, std::move(message)});
}

// Methods reachable from the cluster's entry methods over Invoke / Send /
// Submit edges. Everything else is interprocedurally dead weight.
std::vector<bool> LiveMethods(const ir::Program& program, const LintEnvironment& env) {
  std::vector<bool> live(program.method_count(), false);
  std::vector<ir::MethodId> worklist;
  for (ir::MethodId entry : env.entry_methods) {
    if (entry != ir::kInvalidId && !live[static_cast<size_t>(entry)]) {
      live[static_cast<size_t>(entry)] = true;
      worklist.push_back(entry);
    }
  }
  while (!worklist.empty()) {
    ir::MethodId id = worklist.back();
    worklist.pop_back();
    for (const ir::Stmt& stmt : program.method(id).stmts) {
      if (stmt.kind != ir::StmtKind::kInvoke && stmt.kind != ir::StmtKind::kSend &&
          stmt.kind != ir::StmtKind::kSubmit) {
        continue;
      }
      if (!live[static_cast<size_t>(stmt.callee)]) {
        live[static_cast<size_t>(stmt.callee)] = true;
        worklist.push_back(stmt.callee);
      }
    }
  }
  return live;
}

// Is `stmt` one of the catch-clause blocks of its parent TryCatch?
bool IsCatchBlock(const ir::Method& method, ir::StmtId stmt) {
  ir::StmtId parent_id = method.stmt(stmt).parent;
  if (parent_id == ir::kInvalidId ||
      method.stmt(parent_id).kind != ir::StmtKind::kTryCatch) {
    return false;
  }
  for (const ir::CatchClause& clause : method.stmt(parent_id).catches) {
    if (clause.block == stmt) {
      return true;
    }
  }
  return false;
}

// Pass: unreachable-stmt. Cascade-suppressed (only the topmost unreachable
// statement of a region is reported); catch blocks are the impossible-catch
// pass's territory.
void LintUnreachable(const ir::Program& program, const std::vector<MethodCfg>& cfgs,
                     LintReport* report) {
  for (size_t m = 0; m < program.method_count(); ++m) {
    const ir::Method& method = program.method(static_cast<ir::MethodId>(m));
    const MethodCfg& cfg = cfgs[m];
    for (ir::StmtId s = 1; s < static_cast<ir::StmtId>(method.stmts.size()); ++s) {
      if (cfg.StmtReachable(s) || !cfg.StmtReachable(method.stmt(s).parent) ||
          IsCatchBlock(method, s)) {
        continue;
      }
      Emit(report, LintSeverity::kError, "unreachable-stmt",
           ir::GlobalStmt{method.id, s},
           StrFormat("%s statement is unreachable from the method entry",
                     ir::StmtKindName(method.stmt(s).kind)));
    }
  }
}

// Pass: shadowed-catch + impossible-catch.
void LintCatchClauses(const ir::Program& program, const ExceptionFlow& flow,
                      LintReport* report) {
  for (size_t m = 0; m < program.method_count(); ++m) {
    const ir::Method& method = program.method(static_cast<ir::MethodId>(m));
    for (ir::StmtId s = 0; s < static_cast<ir::StmtId>(method.stmts.size()); ++s) {
      const ir::Stmt& stmt = method.stmt(s);
      if (stmt.kind != ir::StmtKind::kTryCatch) {
        continue;
      }
      for (size_t j = 0; j < stmt.catches.size(); ++j) {
        bool shadowed = false;
        for (size_t i = 0; i < j && !shadowed; ++i) {
          if (program.ExceptionIsA(stmt.catches[j].type, stmt.catches[i].type)) {
            Emit(report, LintSeverity::kError, "shadowed-catch", ir::GlobalStmt{method.id, s},
                 StrFormat("catch clause %zu (%s) is shadowed by clause %zu (%s)", j,
                           program.exception_type(stmt.catches[j].type).name.c_str(), i,
                           program.exception_type(stmt.catches[i].type).name.c_str()));
            shadowed = true;
          }
        }
        if (!shadowed && flow.HandlerOrigins(method.id, s, j).empty()) {
          Emit(report, LintSeverity::kWarning, "impossible-catch",
               ir::GlobalStmt{method.id, s},
               StrFormat("no exception raised in the try block can reach catch clause "
                         "%zu (%s)",
                         j, program.exception_type(stmt.catches[j].type).name.c_str()));
        }
      }
    }
  }
}

// Pass: write-only-var. Submit's future write is exempt: fire-and-forget
// futures are an idiomatic pattern, not a bug.
void LintWriteOnlyVars(const ir::Program& program, LintReport* report) {
  std::vector<bool> read(program.var_count(), false);
  std::vector<ir::GlobalStmt> first_write(program.var_count());
  std::vector<ir::VarId> reads;
  for (size_t m = 0; m < program.method_count(); ++m) {
    const ir::Method& method = program.method(static_cast<ir::MethodId>(m));
    for (ir::StmtId s = 0; s < static_cast<ir::StmtId>(method.stmts.size()); ++s) {
      const ir::Stmt& stmt = method.stmt(s);
      reads.clear();
      switch (stmt.kind) {
        case ir::StmtKind::kAssign:
        case ir::StmtKind::kSubmit:
          stmt.expr.CollectReads(&reads);
          break;
        case ir::StmtKind::kIf:
        case ir::StmtKind::kWhile:
        case ir::StmtKind::kAwait:
          stmt.cond.CollectReads(&reads);
          break;
        case ir::StmtKind::kLog:
          for (const ir::Expr& arg : stmt.log_args) {
            arg.CollectReads(&reads);
          }
          break;
        case ir::StmtKind::kSend:
          stmt.expr.CollectReads(&reads);
          if (stmt.target_index_var != ir::kInvalidId) {
            reads.push_back(stmt.target_index_var);
          }
          break;
        case ir::StmtKind::kFutureGet:
          reads.push_back(stmt.future_var);
          break;
        default:
          break;
      }
      for (ir::VarId var : reads) {
        read[static_cast<size_t>(var)] = true;
      }
      if ((stmt.kind == ir::StmtKind::kAssign || stmt.kind == ir::StmtKind::kSignal) &&
          first_write[static_cast<size_t>(stmt.assign_var)].method == ir::kInvalidId) {
        first_write[static_cast<size_t>(stmt.assign_var)] = ir::GlobalStmt{method.id, s};
      }
    }
  }
  for (size_t v = 0; v < program.var_count(); ++v) {
    if (first_write[v].method != ir::kInvalidId && !read[v]) {
      Emit(report, LintSeverity::kWarning, "write-only-var", first_write[v],
           StrFormat("variable '%s' is written but never read",
                     program.var_name(static_cast<ir::VarId>(v)).c_str()));
    }
  }
}

// Pass: dead-fault-site (cluster-dependent).
void LintDeadFaultSites(const ir::Program& program, const std::vector<bool>& live,
                        LintReport* report) {
  for (const ir::FaultSite& site : program.fault_sites()) {
    if (!live[static_cast<size_t>(site.location.method)]) {
      Emit(report, LintSeverity::kInfo, "dead-fault-site", site.location,
           StrFormat("fault site '%s' sits in method '%s', which no cluster entry "
                     "reaches",
                     site.name.c_str(),
                     program.method(site.location.method).name.c_str()));
    }
  }
}

// Pass: inert-log. Builds one causal graph with every Log statement as its
// own sink/observable, then asks which observables no *injectable*
// (external) source can reach.
void LintInertLogs(const ir::Program& program, LintReport* report) {
  std::vector<CausalSink> sinks;
  std::vector<ir::GlobalStmt> log_stmts;
  for (size_t m = 0; m < program.method_count(); ++m) {
    const ir::Method& method = program.method(static_cast<ir::MethodId>(m));
    for (ir::StmtId s = 0; s < static_cast<ir::StmtId>(method.stmts.size()); ++s) {
      if (method.stmt(s).kind != ir::StmtKind::kLog) {
        continue;
      }
      CausalSink sink;
      sink.observable = static_cast<int32_t>(log_stmts.size());
      sink.log_stmt = ir::GlobalStmt{method.id, s};
      sinks.push_back(sink);
      log_stmts.push_back(sink.log_stmt);
    }
  }
  if (sinks.empty()) {
    return;
  }
  CausalGraph graph(program, sinks);
  for (size_t k = 0; k < log_stmts.size(); ++k) {
    std::vector<int32_t> distances = graph.DistancesToObservable(static_cast<int32_t>(k));
    bool reachable = false;
    for (const CausalGraph::SourceSite& source : graph.sources()) {
      if (program.fault_site(source.site).kind == ir::FaultSiteKind::kExternal &&
          distances[static_cast<size_t>(source.node)] != CausalGraph::kUnreachable) {
        reachable = true;
        break;
      }
    }
    if (!reachable) {
      Emit(report, LintSeverity::kInfo, "inert-log", log_stmts[k],
           "no injectable fault site has a static causal path to this log statement "
           "(inert observable)");
    }
  }
}

// Pass: unregistered-send-target (cluster-dependent). Mirrors the
// simulator's resolution: a static target must name a node exactly; a
// dynamic target ("node prefix" + env[index_var]) must at least prefix-match
// a node. Only sends in live methods count — dead code never executes, so
// the runtime CHECK it would trip stays theoretical.
void LintSendTargets(const ir::Program& program, const LintEnvironment& env,
                     const std::vector<bool>& live, LintReport* report) {
  for (size_t m = 0; m < program.method_count(); ++m) {
    if (!live[m]) {
      continue;
    }
    const ir::Method& method = program.method(static_cast<ir::MethodId>(m));
    for (ir::StmtId s = 0; s < static_cast<ir::StmtId>(method.stmts.size()); ++s) {
      const ir::Stmt& stmt = method.stmt(s);
      if (stmt.kind != ir::StmtKind::kSend) {
        continue;
      }
      bool matched = false;
      for (const std::string& node : env.node_names) {
        matched = stmt.target_index_var == ir::kInvalidId
                      ? node == stmt.target_node
                      : node.rfind(stmt.target_node, 0) == 0;
        if (matched) {
          break;
        }
      }
      if (!matched) {
        Emit(report, LintSeverity::kError, "unregistered-send-target",
             ir::GlobalStmt{method.id, s},
             StrFormat("send to '%s%s' matches no registered cluster node",
                       stmt.target_node.c_str(),
                       stmt.target_index_var == ir::kInvalidId ? "" : "<index>"));
      }
    }
  }
}

// Pass: future-get-unsubmitted.
void LintFutureGets(const ir::Program& program, const ProgramIndexes& indexes,
                    LintReport* report) {
  for (size_t m = 0; m < program.method_count(); ++m) {
    const ir::Method& method = program.method(static_cast<ir::MethodId>(m));
    for (ir::StmtId s = 0; s < static_cast<ir::StmtId>(method.stmts.size()); ++s) {
      const ir::Stmt& stmt = method.stmt(s);
      if (stmt.kind == ir::StmtKind::kFutureGet &&
          indexes.SubmitsFor(stmt.future_var).empty()) {
        Emit(report, LintSeverity::kError, "future-get-unsubmitted",
             ir::GlobalStmt{method.id, s},
             StrFormat("FutureGet on '%s', which no Submit anywhere in the program "
                       "writes — it can only block or time out",
                       program.var_name(stmt.future_var).c_str()));
      }
    }
  }
}

}  // namespace

const char* LintSeverityName(LintSeverity severity) {
  switch (severity) {
    case LintSeverity::kError:
      return "error";
    case LintSeverity::kWarning:
      return "warning";
    case LintSeverity::kInfo:
      return "info";
  }
  return "?";
}

size_t LintReport::CountOf(LintSeverity severity) const {
  return static_cast<size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [&](const LintDiagnostic& d) { return d.severity == severity; }));
}

std::string LintReport::ToText(const ir::Program& program) const {
  std::string out;
  for (const LintDiagnostic& diagnostic : diagnostics) {
    out += StrFormat("%s [%s] @%s#%d: %s\n", LintSeverityName(diagnostic.severity),
                     diagnostic.pass.c_str(),
                     program.method(diagnostic.location.method).name.c_str(),
                     diagnostic.location.stmt, diagnostic.message.c_str());
  }
  out += StrFormat("%zu errors, %zu warnings, %zu infos (%.2f ms)\n",
                   CountOf(LintSeverity::kError), CountOf(LintSeverity::kWarning),
                   CountOf(LintSeverity::kInfo), seconds * 1000.0);
  return out;
}

std::string LintReport::ToJson(const ir::Program& program) const {
  JsonValue root = JsonValue::Object();
  root.Set("errors", JsonValue::Int(static_cast<int64_t>(CountOf(LintSeverity::kError))));
  root.Set("warnings",
           JsonValue::Int(static_cast<int64_t>(CountOf(LintSeverity::kWarning))));
  root.Set("infos", JsonValue::Int(static_cast<int64_t>(CountOf(LintSeverity::kInfo))));
  root.Set("seconds", JsonValue::Double(seconds));
  JsonValue list = JsonValue::Array();
  for (const LintDiagnostic& diagnostic : diagnostics) {
    JsonValue entry = JsonValue::Object();
    entry.Set("severity", JsonValue::Str(LintSeverityName(diagnostic.severity)));
    entry.Set("pass", JsonValue::Str(diagnostic.pass));
    entry.Set("method",
              JsonValue::Str(program.method(diagnostic.location.method).name));
    entry.Set("stmt", JsonValue::Int(diagnostic.location.stmt));
    entry.Set("message", JsonValue::Str(diagnostic.message));
    list.Append(std::move(entry));
  }
  root.Set("diagnostics", std::move(list));
  return root.Dump();
}

LintReport RunLints(const ir::Program& program, const LintEnvironment& env) {
  Stopwatch timer;
  LintReport report;
  ExceptionFlow flow(program);
  ProgramIndexes indexes(program);
  std::vector<MethodCfg> cfgs;
  cfgs.reserve(program.method_count());
  for (size_t m = 0; m < program.method_count(); ++m) {
    cfgs.emplace_back(program, static_cast<ir::MethodId>(m), &flow);
  }

  LintUnreachable(program, cfgs, &report);
  LintCatchClauses(program, flow, &report);
  LintWriteOnlyVars(program, &report);
  LintInertLogs(program, &report);
  LintFutureGets(program, indexes, &report);
  if (env.provided) {
    std::vector<bool> live = LiveMethods(program, env);
    LintDeadFaultSites(program, live, &report);
    LintSendTargets(program, env, live, &report);
  }
  report.seconds = timer.ElapsedSeconds();
  return report;
}

}  // namespace anduril::analysis
