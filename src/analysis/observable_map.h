// Maps relevant observables (sanitized log keys from the per-thread diff)
// back to program points — the step that connects the log-diff world (§5.1)
// to the static causal graph (§4.1).
//
// Three resolution forms:
//   1. A key matching a log template maps to every Log statement using that
//      template (several code locations can print the same message).
//   2. A key carrying a printed exception (" [exc=Type at site]" — the
//      stack-trace analog emitted by LogExc) matches its template with the
//      suffix stripped.
//   3. An uncaught-exception key ("Uncaught exception terminating thread:")
//      names the origin fault site directly, like a stack trace in a real
//      log; it maps to that fault-site node itself.

#ifndef ANDURIL_SRC_ANALYSIS_OBSERVABLE_MAP_H_
#define ANDURIL_SRC_ANALYSIS_OBSERVABLE_MAP_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/analysis/causal_graph.h"
#include "src/ir/program.h"

namespace anduril::analysis {

class ObservableMapper {
 public:
  explicit ObservableMapper(const ir::Program& program);

  // Resolves each observable key (index = observable id) to zero or more
  // causal sinks. Keys that resolve to nothing (pure noise) produce no sinks.
  std::vector<CausalSink> Resolve(const std::vector<std::string>& keys) const;

  // The sanitized identity key a log template produces (exposed for tests).
  static std::string TemplateKey(const ir::Program& program, ir::LogTemplateId tmpl);

 private:
  const ir::Program& program_;
  std::unordered_map<std::string, std::vector<ir::GlobalStmt>> template_index_;
  std::unordered_map<std::string, std::vector<ir::FaultSiteId>> site_index_;
};

}  // namespace anduril::analysis

#endif  // ANDURIL_SRC_ANALYSIS_OBSERVABLE_MAP_H_
