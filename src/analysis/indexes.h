// Whole-program indexes used by the causal analysis:
//   - CallGraph: reverse call edges (method -> call sites), covering Invoke,
//     Send (message handler registration) and Submit (task scheduling).
//   - WriteIndex: variable -> statements that write it (Assign) or signal it
//     (Signal). This powers the Pensieve-style "jumping" slicing: given a
//     condition on x, every writer of x anywhere in the program is treated
//     as possibly causal, without path-feasibility checks (§4.1).
//   - Future binding: future variable -> Submit statements that create it,
//     used to resolve FutureGet cross-thread propagation.

#ifndef ANDURIL_SRC_ANALYSIS_INDEXES_H_
#define ANDURIL_SRC_ANALYSIS_INDEXES_H_

#include <unordered_map>
#include <vector>

#include "src/ir/program.h"

namespace anduril::analysis {

struct CallSite {
  ir::GlobalStmt location;
  ir::StmtKind kind = ir::StmtKind::kInvoke;  // kInvoke / kSend / kSubmit
};

class ProgramIndexes {
 public:
  explicit ProgramIndexes(const ir::Program& program);

  // Call sites that can transfer control to `method`.
  const std::vector<CallSite>& CallersOf(ir::MethodId method) const;
  // Statements writing or signalling `var`.
  const std::vector<ir::GlobalStmt>& WritersOf(ir::VarId var) const;
  // Submit statements whose future is stored in `var`.
  const std::vector<ir::GlobalStmt>& SubmitsFor(ir::VarId var) const;

 private:
  std::vector<std::vector<CallSite>> callers_;             // by MethodId
  std::unordered_map<ir::VarId, std::vector<ir::GlobalStmt>> writers_;
  std::unordered_map<ir::VarId, std::vector<ir::GlobalStmt>> submits_;
  std::vector<ir::GlobalStmt> empty_;
  std::vector<CallSite> empty_callers_;
};

}  // namespace anduril::analysis

#endif  // ANDURIL_SRC_ANALYSIS_INDEXES_H_
