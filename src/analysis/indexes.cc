#include "src/analysis/indexes.h"

#include "src/util/check.h"

namespace anduril::analysis {

ProgramIndexes::ProgramIndexes(const ir::Program& program) {
  ANDURIL_CHECK(program.finalized());
  callers_.resize(program.method_count());
  for (size_t m = 0; m < program.method_count(); ++m) {
    const ir::Method& method = program.method(static_cast<ir::MethodId>(m));
    for (ir::StmtId s = 0; s < static_cast<ir::StmtId>(method.stmts.size()); ++s) {
      const ir::Stmt& stmt = method.stmt(s);
      ir::GlobalStmt loc{method.id, s};
      switch (stmt.kind) {
        case ir::StmtKind::kInvoke:
        case ir::StmtKind::kSend:
          callers_[static_cast<size_t>(stmt.callee)].push_back(CallSite{loc, stmt.kind});
          break;
        case ir::StmtKind::kSubmit:
          callers_[static_cast<size_t>(stmt.callee)].push_back(CallSite{loc, stmt.kind});
          submits_[stmt.future_var].push_back(loc);
          break;
        case ir::StmtKind::kAssign:
        case ir::StmtKind::kSignal:
          writers_[stmt.assign_var].push_back(loc);
          break;
        default:
          break;
      }
    }
  }
}

const std::vector<CallSite>& ProgramIndexes::CallersOf(ir::MethodId method) const {
  return callers_[static_cast<size_t>(method)];
}

const std::vector<ir::GlobalStmt>& ProgramIndexes::WritersOf(ir::VarId var) const {
  auto it = writers_.find(var);
  return it == writers_.end() ? empty_ : it->second;
}

const std::vector<ir::GlobalStmt>& ProgramIndexes::SubmitsFor(ir::VarId var) const {
  auto it = submits_.find(var);
  return it == submits_.end() ? empty_ : it->second;
}

}  // namespace anduril::analysis
