// Graphviz export of causal graphs, for debugging the static analysis and
// for the DESIGN.md illustrations. Sources (injectable root causes) are
// drawn as boxes, sinks (observable log points) as double circles.

#ifndef ANDURIL_SRC_ANALYSIS_GRAPH_EXPORT_H_
#define ANDURIL_SRC_ANALYSIS_GRAPH_EXPORT_H_

#include <string>

#include "src/analysis/causal_graph.h"

namespace anduril::analysis {

// Renders the whole graph in DOT syntax. `max_nodes` caps the output for
// very large graphs (0 = no cap); truncation is annotated in the output.
std::string ExportDot(const ir::Program& program, const CausalGraph& graph,
                      size_t max_nodes = 0);

// Human-readable one-line description of a node, also used as DOT labels.
std::string DescribeNode(const ir::Program& program, const CausalNode& node);

// Escapes `text` for a double-quoted DOT label: quotes and backslashes are
// backslash-escaped, newlines / carriage returns / tabs become their "\n"
// style escapes, and other non-printable bytes render as literal "\xNN"
// text — so a hostile log template can never produce invalid DOT.
// `max_chars` (0 = unlimited) caps the number of *source* characters kept;
// escape sequences are emitted atomically, so the cap never cuts one in
// half, and truncation is marked with "...".
std::string EscapeDotLabel(const std::string& text, size_t max_chars = 0);

}  // namespace anduril::analysis

#endif  // ANDURIL_SRC_ANALYSIS_GRAPH_EXPORT_H_
