// Graphviz export of causal graphs, for debugging the static analysis and
// for the DESIGN.md illustrations. Sources (injectable root causes) are
// drawn as boxes, sinks (observable log points) as double circles.

#ifndef ANDURIL_SRC_ANALYSIS_GRAPH_EXPORT_H_
#define ANDURIL_SRC_ANALYSIS_GRAPH_EXPORT_H_

#include <string>

#include "src/analysis/causal_graph.h"

namespace anduril::analysis {

// Renders the whole graph in DOT syntax. `max_nodes` caps the output for
// very large graphs (0 = no cap); truncation is annotated in the output.
std::string ExportDot(const ir::Program& program, const CausalGraph& graph,
                      size_t max_nodes = 0);

// Human-readable one-line description of a node, also used as DOT labels.
std::string DescribeNode(const ir::Program& program, const CausalNode& node);

}  // namespace anduril::analysis

#endif  // ANDURIL_SRC_ANALYSIS_GRAPH_EXPORT_H_
