#include "src/analysis/exception_flow.h"

#include <algorithm>

#include "src/util/check.h"

namespace anduril::analysis {

ExceptionFlow::ExceptionFlow(const ir::Program& program) : program_(program) {
  ANDURIL_CHECK(program.finalized());
  escapes_.resize(program.method_count());
  // Fixpoint: escape summaries grow monotonically until stable. Invoke
  // potential-throws read the summaries of callees, so we iterate.
  bool changed = true;
  while (changed) {
    changed = false;
    ++iterations_;
    for (size_t m = 0; m < program.method_count(); ++m) {
      const ir::Method& method = program.method(static_cast<ir::MethodId>(m));
      std::vector<std::vector<ir::ExceptionTypeId>> active_catches;
      std::vector<ThrowOrigin> origins;
      CollectSubtree(method, 0, &active_catches, &origins);
      std::sort(origins.begin(), origins.end(),
                [](const ThrowOrigin& a, const ThrowOrigin& b) {
                  return std::tie(a.type, a.stmt, a.kind) < std::tie(b.type, b.stmt, b.kind);
                });
      origins.erase(std::unique(origins.begin(), origins.end()), origins.end());
      if (origins != escapes_[m]) {
        escapes_[m] = std::move(origins);
        changed = true;
      }
    }
    ANDURIL_CHECK_LT(iterations_, 1000) << "exception-flow fixpoint diverged";
  }
}

bool ExceptionFlow::Absorbed(
    ir::ExceptionTypeId type,
    const std::vector<std::vector<ir::ExceptionTypeId>>& active_catches) const {
  for (const auto& clauses : active_catches) {
    for (ir::ExceptionTypeId caught : clauses) {
      if (program_.ExceptionIsA(type, caught)) {
        return true;
      }
    }
  }
  return false;
}

void ExceptionFlow::PotentialThrows(const ir::Method& method, ir::StmtId stmt_id,
                                    std::vector<ThrowOrigin>* out) const {
  const ir::Stmt& stmt = method.stmt(stmt_id);
  switch (stmt.kind) {
    case ir::StmtKind::kThrow:
      if (stmt.exception_type == ir::kInvalidId) {
        // Rethrow: conservatively escapes with the enclosing clause's type.
        ir::StmtId cur = stmt_id;
        ir::StmtId parent_id = method.stmt(cur).parent;
        while (parent_id != ir::kInvalidId) {
          const ir::Stmt& parent = method.stmt(parent_id);
          if (parent.kind == ir::StmtKind::kTryCatch) {
            for (const ir::CatchClause& clause : parent.catches) {
              if (clause.block == cur) {
                out->push_back(ThrowOrigin{clause.type, stmt_id, OriginKind::kRethrow});
                return;
              }
            }
          }
          cur = parent_id;
          parent_id = method.stmt(cur).parent;
        }
        ANDURIL_UNREACHABLE() << "rethrow outside catch in " << method.name;
      }
      out->push_back(ThrowOrigin{stmt.exception_type, stmt_id, OriginKind::kNew});
      return;
    case ir::StmtKind::kExternalCall:
      for (ir::ExceptionTypeId type : stmt.throwable_types) {
        out->push_back(ThrowOrigin{type, stmt_id, OriginKind::kExternal});
      }
      return;
    case ir::StmtKind::kAwait:
      if (stmt.exception_type != ir::kInvalidId) {
        out->push_back(ThrowOrigin{stmt.exception_type, stmt_id, OriginKind::kAwaitTimeout});
      }
      return;
    case ir::StmtKind::kFutureGet: {
      ir::ExceptionTypeId exec = program_.FindException("ExecutionException");
      if (exec != ir::kInvalidId) {
        out->push_back(ThrowOrigin{exec, stmt_id, OriginKind::kViaFuture});
      }
      if (stmt.exception_type != ir::kInvalidId) {
        out->push_back(ThrowOrigin{stmt.exception_type, stmt_id, OriginKind::kFutureTimeout});
      }
      return;
    }
    case ir::StmtKind::kInvoke: {
      for (const ThrowOrigin& escape : escapes_[static_cast<size_t>(stmt.callee)]) {
        out->push_back(ThrowOrigin{escape.type, stmt_id, OriginKind::kViaInvoke});
      }
      return;
    }
    default:
      return;  // kSend / kSubmit are asynchronous: nothing propagates here
  }
}

void ExceptionFlow::CollectSubtree(
    const ir::Method& method, ir::StmtId root,
    std::vector<std::vector<ir::ExceptionTypeId>>* active_catches,
    std::vector<ThrowOrigin>* out) const {
  const ir::Stmt& stmt = method.stmt(root);
  switch (stmt.kind) {
    case ir::StmtKind::kBlock:
      for (ir::StmtId child : stmt.children) {
        CollectSubtree(method, child, active_catches, out);
      }
      return;
    case ir::StmtKind::kIf:
      CollectSubtree(method, stmt.then_block, active_catches, out);
      if (stmt.else_block != ir::kInvalidId) {
        CollectSubtree(method, stmt.else_block, active_catches, out);
      }
      return;
    case ir::StmtKind::kWhile:
      CollectSubtree(method, stmt.then_block, active_catches, out);
      return;
    case ir::StmtKind::kTryCatch: {
      std::vector<ir::ExceptionTypeId> clauses;
      for (const ir::CatchClause& clause : stmt.catches) {
        clauses.push_back(clause.type);
      }
      active_catches->push_back(std::move(clauses));
      CollectSubtree(method, stmt.try_block, active_catches, out);
      active_catches->pop_back();
      // Catch blocks execute outside the protection of their own clause.
      for (const ir::CatchClause& clause : stmt.catches) {
        CollectSubtree(method, clause.block, active_catches, out);
      }
      return;
    }
    default: {
      std::vector<ThrowOrigin> potentials;
      PotentialThrows(method, root, &potentials);
      for (const ThrowOrigin& origin : potentials) {
        if (!Absorbed(origin.type, *active_catches)) {
          out->push_back(origin);
        }
      }
      return;
    }
  }
}

std::vector<ThrowOrigin> ExceptionFlow::HandlerOrigins(ir::MethodId method_id,
                                                       ir::StmtId trycatch,
                                                       size_t clause_index) const {
  const ir::Method& method = program_.method(method_id);
  const ir::Stmt& stmt = method.stmt(trycatch);
  ANDURIL_CHECK_EQ(stmt.kind, ir::StmtKind::kTryCatch);
  ANDURIL_CHECK_LT(clause_index, stmt.catches.size());

  // Origins escaping the try-block subtree (nested trys absorb their own).
  std::vector<std::vector<ir::ExceptionTypeId>> active;
  std::vector<ThrowOrigin> raw;
  CollectSubtree(method, stmt.try_block, &active, &raw);

  std::vector<ThrowOrigin> result;
  for (const ThrowOrigin& origin : raw) {
    // Clause precedence: the first matching clause wins.
    bool taken_earlier = false;
    for (size_t i = 0; i < clause_index; ++i) {
      if (program_.ExceptionIsA(origin.type, stmt.catches[i].type)) {
        taken_earlier = true;
        break;
      }
    }
    if (!taken_earlier && program_.ExceptionIsA(origin.type, stmt.catches[clause_index].type)) {
      result.push_back(origin);
    }
  }
  std::sort(result.begin(), result.end(), [](const ThrowOrigin& a, const ThrowOrigin& b) {
    return std::tie(a.type, a.stmt, a.kind) < std::tie(b.type, b.stmt, b.kind);
  });
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

}  // namespace anduril::analysis
