// Interprocedural exception-flow analysis (§4.1 "Exception Analysis").
//
// For every method we compute which exception types can escape it and from
// which statements, with the *kind* of the immediate origin:
//   - kNew:          a `throw new E` in this method
//   - kExternal:     an external library call in this method
//   - kAwaitTimeout: an Await whose timeout throws
//   - kFutureTimeout:a FutureGet whose timeout throws
//   - kViaInvoke:    propagated out of a synchronous callee
//   - kViaFuture:    surfaced by FutureGet as ExecutionException (the paper's
//                    cross-thread future-semantics extension)
//   - kRethrow:      `throw e` from a catch block
//
// The summaries respect try/catch absorption inside each method (an
// IOException thrown inside a try with catch(IOException) does not escape)
// and are computed to a fixpoint over the call graph, so recursion and
// mutual calls converge.

#ifndef ANDURIL_SRC_ANALYSIS_EXCEPTION_FLOW_H_
#define ANDURIL_SRC_ANALYSIS_EXCEPTION_FLOW_H_

#include <vector>

#include "src/ir/program.h"

namespace anduril::analysis {

enum class OriginKind : uint8_t {
  kNew,
  kExternal,
  kAwaitTimeout,
  kFutureTimeout,
  kViaInvoke,
  kViaFuture,
  kRethrow,
};

struct ThrowOrigin {
  ir::ExceptionTypeId type = ir::kInvalidId;
  ir::StmtId stmt = ir::kInvalidId;  // statement within the analyzed method
  OriginKind kind = OriginKind::kNew;

  friend bool operator==(const ThrowOrigin&, const ThrowOrigin&) = default;
};

class ExceptionFlow {
 public:
  // Runs the fixpoint. The program must be finalized.
  explicit ExceptionFlow(const ir::Program& program);

  // Exceptions that can escape `method` (deduplicated).
  const std::vector<ThrowOrigin>& Escapes(ir::MethodId method) const {
    return escapes_[static_cast<size_t>(method)];
  }

  // Exceptions raised inside the try block of `trycatch` (in `method`) that
  // the catch clause `clause_index` handles: they match the clause type and
  // no earlier clause, and are not absorbed by a nested try inside the try
  // block.
  std::vector<ThrowOrigin> HandlerOrigins(ir::MethodId method, ir::StmtId trycatch,
                                          size_t clause_index) const;

  // Number of fixpoint iterations (reported by the static-analysis bench).
  int iterations() const { return iterations_; }

 private:
  // Collects origins escaping the subtree rooted at `root` of `method`,
  // where `active_catches` are the catch-clause type lists of trys enclosing
  // the *current* position within the subtree.
  void CollectSubtree(const ir::Method& method, ir::StmtId root,
                      std::vector<std::vector<ir::ExceptionTypeId>>* active_catches,
                      std::vector<ThrowOrigin>* out) const;
  // Potential throws of a single (non-structured) statement.
  void PotentialThrows(const ir::Method& method, ir::StmtId stmt_id,
                       std::vector<ThrowOrigin>* out) const;
  bool Absorbed(ir::ExceptionTypeId type,
                const std::vector<std::vector<ir::ExceptionTypeId>>& active_catches) const;

  const ir::Program& program_;
  std::vector<std::vector<ThrowOrigin>> escapes_;
  int iterations_ = 0;
};

}  // namespace anduril::analysis

#endif  // ANDURIL_SRC_ANALYSIS_EXCEPTION_FLOW_H_
